"""Document partitioning and scatter-gather plan decomposition.

The physical-data-independence thesis (§1.2) says a query's answer must
not depend on how the data is laid out.  Sharding is the strongest form
of that claim: split the corpus across N store partitions and the
answer — every tuple, every duplicate, every position — must stay
bit-identical to the single-store execution.  This module holds the
layout-independent half of that machinery:

* **partitioners** — pluggable document → shard assignment.  The default
  is round-robin by document arrival order; the interface deliberately
  leaves room for structural-ID-range splits over the pre/post plane
  (§1.2.1), where a partitioner would route *subtrees* rather than whole
  documents;
* **the scatter splitter** — decomposes a rewriting plan into the
  largest *distributive* subplan (per-tuple operators — scan / select /
  project / navigate / derived-column / unnest / XML construction —
  commute with a by-document partition) plus a coordinator-side suffix
  (regrouping, duplicate elimination, anything that combines tuples
  across rows) that must see the merged global stream.  Plans with a
  non-linear spine (joins, products, unions of several relations) do not
  split and fall back to gathered re-execution;
* **merge primitives** — reassemble per-document result runs into the
  exact single-store stream: concatenation in global document order when
  the relation carries no order descriptor, a k-way heap merge (stable
  across shards: ties break on global document sequence, then position)
  when it does.

Everything here is pure — no threads, no store access — so the
coordinator (:mod:`repro.core.coordinator`) stays the only place with
scheduling policy.
"""

from __future__ import annotations

import copy
import heapq
from typing import Callable, Iterable, Optional, Protocol, Sequence

from ..algebra.model import NestedTuple
from ..algebra.operators import (
    DerivedColumn,
    Navigate,
    Operator,
    Project,
    Scan,
    Select,
    Unnest,
    XMLize,
)

__all__ = [
    "Partitioner",
    "RoundRobinPartitioner",
    "HashPartitioner",
    "ExplicitPartitioner",
    "ScatterPlan",
    "split_plan",
    "GatheredTuples",
    "evaluate_suffix",
    "merge_runs",
    "merge_sorted_runs",
    "dedup_stream",
]


# -- partitioners ------------------------------------------------------------


class Partitioner(Protocol):
    """Document → shard assignment policy.

    ``assign`` sees the document, its global sequence number (position in
    the coordinator's document list — the corpus-wide document order),
    and the shard count; it returns the shard index.  Implementations
    must be deterministic: replaying a workload against a rebuilt
    coordinator must land every document on the same shard.
    """

    def assign(self, doc, seq: int, shard_count: int) -> int: ...


class RoundRobinPartitioner:
    """The default: document *i* lands on shard ``i % n``."""

    def assign(self, doc, seq: int, shard_count: int) -> int:
        return seq % shard_count

    def __repr__(self) -> str:
        return "RoundRobinPartitioner()"


class HashPartitioner:
    """Deterministic hash of the document name (stable across processes —
    Python's ``hash`` is salted, so it is *not* usable here)."""

    def assign(self, doc, seq: int, shard_count: int) -> int:
        import zlib

        name = getattr(doc, "name", "") or str(seq)
        return zlib.crc32(name.encode("utf-8")) % shard_count

    def __repr__(self) -> str:
        return "HashPartitioner()"


class ExplicitPartitioner:
    """A fixed sequence-number → shard map (property tests use this to
    drive scatter-gather through *every* partitioning of a corpus).
    Unmapped documents fall back to round-robin."""

    def __init__(self, assignments: Sequence[int]):
        self.assignments = list(assignments)

    def assign(self, doc, seq: int, shard_count: int) -> int:
        if seq < len(self.assignments):
            return self.assignments[seq] % shard_count
        return seq % shard_count

    def __repr__(self) -> str:
        return f"ExplicitPartitioner({self.assignments!r})"


# -- scatter splitting -------------------------------------------------------

#: operators that commute with a by-document partition of their input:
#: they produce output tuples from single input tuples, preserving input
#: order, so evaluating per document and concatenating in document order
#: equals evaluating over the concatenated relation.  A
#: duplicate-*eliminating* projection is excluded (dedup sees the whole
#: stream); everything not listed — regrouping, group-by, nesting, and
#: all multi-input operators — combines rows and belongs in the
#: coordinator-side suffix.
_PER_TUPLE_SAFE = (Select, Navigate, DerivedColumn, Unnest, XMLize)


def _distributive(op: Operator) -> bool:
    if isinstance(op, Project):
        return not op.dedup
    return isinstance(op, _PER_TUPLE_SAFE)


class ScatterPlan:
    """How one rewriting plan decomposes across a document partition.

    ``scatterable`` — the plan has a linear spine down to a partitioned
    scan, so it can run scattered;
    ``scatter_root`` — the largest distributive subplan: shards evaluate
    it per document, and the document-order merge of those runs equals
    its single-store output stream;
    ``suffix`` — the remaining operators above the scatter root,
    outermost first.  They see the whole stream (regroup, π⁰, …), so the
    coordinator applies them to the *merged* runs via
    :func:`evaluate_suffix` — semantics identical to the single store by
    construction, since their input stream is;
    ``reason`` — why the plan cannot scatter (empty when it can).
    """

    __slots__ = ("scatterable", "scatter_root", "suffix", "reason")

    def __init__(
        self,
        scatterable: bool,
        scatter_root: Optional[Operator] = None,
        suffix: Sequence[Operator] = (),
        reason: str = "",
    ):
        self.scatterable = scatterable
        self.scatter_root = scatter_root
        self.suffix = list(suffix)
        self.reason = reason

    def __bool__(self) -> bool:
        return self.scatterable

    def __repr__(self) -> str:
        if self.scatterable:
            suffix = ",".join(type(op).__name__ for op in self.suffix) or "-"
            return f"<scatter {type(self.scatter_root).__name__} suffix={suffix}>"
        return f"<fallback: {self.reason}>"


def split_plan(
    plan: Operator,
    segmented: Iterable[str],
    store_names: Iterable[str] = (),
) -> ScatterPlan:
    """Split ``plan`` into a distributive scatter subplan and a
    coordinator-side suffix.

    The plan must have a **linear spine**: single-child operators all the
    way down to a ``Scan`` of a relation in ``segmented`` (the relations
    the coordinator keeps per-document segments of).  A ``missing_ok``
    scan of a relation absent from the whole store also qualifies — it
    reads empty on every layout.  Joins, products and unions have
    multi-child spines and do not split; they fall back to gathered
    re-execution against the full store.

    The split point is the deepest operator from which everything below
    is per-tuple: that subtree scatters, the rest becomes the suffix.
    """
    segmented = set(segmented)
    store_names = set(store_names)
    chain: list[Operator] = [plan]
    while len(chain[-1].children) == 1:
        chain.append(chain[-1].children[0])
    leaf = chain[-1]
    if leaf.children:
        return ScatterPlan(
            False,
            reason=(
                f"operator {type(leaf).__name__} combines several inputs "
                "(non-linear spine)"
            ),
        )
    if not isinstance(leaf, Scan):
        return ScatterPlan(
            False,
            reason=f"leaf {type(leaf).__name__} is not a partitioned scan",
        )
    if leaf.name not in segmented and not (
        leaf.missing_ok and leaf.name not in store_names
    ):
        return ScatterPlan(
            False, reason=f"relation {leaf.name!r} is not document-partitioned"
        )
    split = len(chain) - 1
    while split > 0 and _distributive(chain[split - 1]):
        split -= 1
    return ScatterPlan(True, scatter_root=chain[split], suffix=chain[:split])


class GatheredTuples(Operator):
    """A plan leaf standing for an already-gathered tuple stream — what
    the scatter root is replaced with when the coordinator evaluates a
    suffix over merged runs."""

    def __init__(self, tuples: list, schema: Sequence[str] = ()):
        self.children = ()
        self._tuples = tuples
        self._schema = list(schema)

    def schema(self) -> list[str]:
        return list(self._schema)

    def evaluate(self, context=None) -> list:
        return self._tuples

    def label(self) -> str:
        return f"Gathered[{len(self._tuples)}]"


def evaluate_suffix(
    suffix: Sequence[Operator],
    tuples: list,
    context=None,
    schema: Sequence[str] = (),
) -> list:
    """Apply a coordinator-side suffix (outermost first, as
    :func:`split_plan` returns it) to a merged tuple stream.  Each
    operator is shallow-copied with its child replaced by the gathered
    stream — the originals stay untouched, since prepared plans are
    shared across executions."""
    for op in reversed(suffix):
        clone = copy.copy(op)
        clone.children = (GatheredTuples(tuples, schema),)
        tuples = clone.evaluate(context)
    return tuples


# -- merge primitives --------------------------------------------------------

#: one per-document result run: (global document sequence, tuples)
Run = "tuple[int, list[NestedTuple]]"


def merge_runs(runs: Iterable["tuple[int, list[NestedTuple]]"]) -> list[NestedTuple]:
    """Concatenate per-document runs in global document order.

    This is the merge rule for unordered relations: the single-store
    relation *is* the document-order concatenation of per-document
    materializations, so reassembling gathered runs by their global
    sequence number reproduces it exactly — regardless of which shard
    produced which run or in what order the gather completed.
    """
    out: list[NestedTuple] = []
    for _seq, tuples in sorted(runs, key=lambda run: run[0]):
        out.extend(tuples)
    return out


def merge_sorted_runs(
    runs: Iterable["tuple[int, list[NestedTuple]]"],
    key: Callable[[NestedTuple], object],
) -> list[NestedTuple]:
    """K-way merge of per-document runs each sorted by ``key``.

    Equivalent to a *stable* sort of the document-order concatenation:
    ties on the sort key preserve global document order (the sequence
    number) and, within a document, original position.  When the
    single-store relation is itself sorted by ``key`` (its order
    descriptor), a stable sort is the identity, so this merge reproduces
    the single-store stream while reading each run only once.
    """
    def stream(seq: int, tuples: list):
        for position, t in enumerate(tuples):
            yield ((key(t), seq, position), t)

    streams = [stream(seq, tuples) for seq, tuples in runs]
    return [t for _rank, t in heapq.merge(*streams, key=lambda pair: pair[0])]


def dedup_stream(
    tuples: Iterable[NestedTuple],
    seen: Optional[set] = None,
) -> list[NestedTuple]:
    """First-occurrence duplicate elimination, the global re-application
    of a root π⁰ after merging shard-local (per-document) dedups.  Keyed
    on :meth:`NestedTuple.freeze`, exactly like ``Project(dedup=True)``:
    dedup is idempotent and order-preserving, so local-then-global equals
    one global pass over the concatenated input."""
    if seen is None:
        seen = set()
    out: list[NestedTuple] = []
    for t in tuples:
        frozen = t.freeze()
        if frozen in seen:
            continue
        seen.add(frozen)
        out.append(t)
    return out
