"""A process-wide metrics registry: counters, gauges, bounded histograms.

PRs 1–3 grew observability organically: plan-cache hit/miss counts lived
in :class:`~repro.engine.plan_cache.CacheStats`, breaker state on the
:class:`~repro.engine.breaker.BreakerBoard`, fault injections in
``FaultInjector.injected``, retry and degradation counts in each query's
``ExecutionContext.counters`` dict — five disjoint sinks with five
reading conventions.  The thesis' argument (the optimizer *chooses* among
S-equivalent access paths) is only auditable if the evidence for those
choices is queryable in one place; this module is that place.

:class:`MetricsRegistry` owns three instrument kinds:

* :class:`Counter` — monotonically increasing event counts
  (``plan_cache.hit``, ``retry.attempts``, ``faults.injected.transient``);
* :class:`Gauge` — point-in-time values set at scrape time by registered
  collectors (``plan_cache.size``, ``breaker.open_modules``);
* :class:`Histogram` — bounded-bucket distributions (cumulative
  Prometheus-style ``le`` buckets), used for query latency with an
  ``outcome`` label.

Instruments are named with dotted lowercase words (``family.event``);
exposition sanitizes them into the Prometheus grammar
(``repro_family_event_total``).  Two renderings are offered:
:meth:`MetricsRegistry.render_prometheus` (text exposition format 0.0.4,
what the ``/metrics`` HTTP route serves) and
:meth:`MetricsRegistry.snapshot` (a JSON-able dict, what ``/metrics.json``
and the REPL's ``.metrics`` command serve).

Integration contract: :meth:`ExecutionContext.bump
<repro.engine.context.ExecutionContext.bump>` forwards every per-query
counter bump to the registry attached by ``Database.execution_context``,
so the process totals always equal the sum of the per-query
``result.counters`` dicts — the reconciliation invariant the stress suite
asserts.  Collectors (the plan cache's and the breaker board's) refresh
gauges lazily at scrape time instead of on every mutation.

The module-level :data:`REGISTRY` is the process-wide default; tests that
assert exact totals construct private registries instead.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Iterator, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "sanitize_metric_name",
    "DEFAULT_LATENCY_BUCKETS",
]

#: default histogram buckets (seconds) — tuned for sub-millisecond
#: in-memory query latencies up through multi-second chaos timeouts
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def sanitize_metric_name(name: str) -> str:
    """Dotted registry name → Prometheus metric name (``[a-zA-Z_:][a-zA-Z0-9_:]*``)."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _render_labels(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


def _escape_label(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """Common shell of every instrument: a name, help text, label names,
    and per-label-value child state guarded by one lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _label_key(self, labels: dict[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"instrument {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)


class Counter(_Instrument):
    """A monotonically increasing count of events."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}
        if not self.labelnames:
            self._values[()] = 0.0

    def inc(self, value: float = 1.0, **labels: str) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def set_total(self, value: float, **labels: str) -> None:
        """Overwrite the absolute total — for collectors mirroring a
        counter maintained elsewhere (e.g. the plan cache's eviction
        count).  The source must itself be monotonic."""
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels: str) -> float:
        key = self._label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def items(self) -> list[tuple[tuple[str, ...], float]]:
        with self._lock:
            return sorted(self._values.items())


class Gauge(_Instrument):
    """A point-in-time value (sizes, capacities, open-breaker counts)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}
        if not self.labelnames:
            self._values[()] = 0.0

    def set(self, value: float, **labels: str) -> None:
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, value: float = 1.0, **labels: str) -> None:
        key = self._label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: str) -> float:
        key = self._label_key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def items(self) -> list[tuple[tuple[str, ...], float]]:
        with self._lock:
            return sorted(self._values.items())


class _HistogramChild:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0


class Histogram(_Instrument):
    """A bounded-memory distribution: fixed buckets, running sum & count.

    Buckets are upper bounds (``le`` semantics); an implicit ``+Inf``
    bucket always exists.  Memory is O(buckets) per label combination
    regardless of how many samples are observed — the registry never
    retains raw samples (the :class:`~repro.core.service.LatencyRecorder`
    keeps a *bounded* raw-sample ring for exact small-n percentiles; this
    is the unbounded-horizon aggregate).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if bounds and bounds[-1] == float("inf"):
            bounds = bounds[:-1]
        self.buckets = tuple(bounds)
        self._children: dict[tuple[str, ...], _HistogramChild] = {}
        if not self.labelnames:
            self._children[()] = _HistogramChild(len(self.buckets) + 1)

    def observe(self, value: float, **labels: str) -> None:
        key = self._label_key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _HistogramChild(len(self.buckets) + 1)
            child.bucket_counts[index] += 1
            child.total += value
            child.count += 1

    def count(self, **labels: str) -> int:
        key = self._label_key(labels)
        with self._lock:
            child = self._children.get(key)
            return child.count if child is not None else 0

    def sum(self, **labels: str) -> float:
        key = self._label_key(labels)
        with self._lock:
            child = self._children.get(key)
            return child.total if child is not None else 0.0

    def quantile(self, q: float, **labels: str) -> Optional[float]:
        """Approximate quantile (the upper bound of the bucket holding the
        nearest-rank sample); None when empty or when it falls in +Inf."""
        key = self._label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None or child.count == 0:
                return None
            counts = list(child.bucket_counts)
            count = child.count
        import math

        rank = max(1, min(count, math.ceil(q * count)))
        seen = 0
        for index, bucket_count in enumerate(counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(self.buckets):
                    return self.buckets[index]
                return None  # in the +Inf bucket: no finite upper bound
        return None

    def items(self) -> list[tuple[tuple[str, ...], _HistogramChild]]:
        with self._lock:
            return sorted(
                (key, child) for key, child in self._children.items()
            )


class MetricsRegistry:
    """Get-or-create home of every instrument, with unified exposition.

    ``inc`` / ``set_gauge`` / ``observe`` are name-keyed conveniences used
    by call sites that should not care whether the instrument existed yet
    (``ExecutionContext.bump`` forwarding); typed accessors
    (:meth:`counter`, :meth:`gauge`, :meth:`histogram`) pre-register
    instruments with help text so ``/metrics`` shows every family even
    before its first event.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []
        self._lock = threading.Lock()

    # -- instrument access --------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Instrument:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = cls(name, help, **kwargs)
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {instrument.kind}"
                )
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames=labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames=labelnames, buckets=buckets
        )

    # -- name-keyed conveniences -------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        labelnames = tuple(sorted(labels))
        self.counter(name, labelnames=labelnames).inc(value, **labels)

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        labelnames = tuple(sorted(labels))
        self.gauge(name, labelnames=labelnames).set(value, **labels)

    def observe(self, name: str, value: float, **labels: str) -> None:
        labelnames = tuple(sorted(labels))
        self.histogram(name, labelnames=labelnames).observe(value, **labels)

    def counter_value(self, name: str, **labels: str) -> float:
        instrument = self._instruments.get(name)
        if not isinstance(instrument, Counter):
            return 0.0
        return instrument.value(**labels)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all its label combinations."""
        instrument = self._instruments.get(name)
        if not isinstance(instrument, Counter):
            return 0.0
        return sum(value for _, value in instrument.items())

    # -- collectors ---------------------------------------------------------

    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Register a scrape-time callback that refreshes gauges (and
        mirrored counters) from live objects — the pull model: state is
        read when someone looks, not maintained on every mutation.

        Collectors registered on the process-wide registry must not pin
        their source objects: hold a weak reference and call
        :meth:`unregister_collector` when it dies (see
        ``PlanCache.register_metrics`` for the idiom)."""
        with self._lock:
            self._collectors.append(collector)

    def unregister_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

    def collect(self) -> list[_Instrument]:
        for collector in list(self._collectors):
            collector(self)
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    # -- exposition ---------------------------------------------------------

    def render_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for instrument in self.collect():
            base = sanitize_metric_name(
                f"{prefix}_{instrument.name}" if prefix else instrument.name
            )
            exposed = base + "_total" if instrument.kind == "counter" else base
            help_text = instrument.help or instrument.name
            lines.append(f"# HELP {exposed} {help_text}")
            lines.append(f"# TYPE {exposed} {instrument.kind}")
            if isinstance(instrument, (Counter, Gauge)):
                for labelvalues, value in instrument.items():
                    labels = _render_labels(instrument.labelnames, labelvalues)
                    lines.append(f"{exposed}{labels} {_format_value(value)}")
            elif isinstance(instrument, Histogram):
                for labelvalues, child in instrument.items():
                    cumulative = 0
                    for bound, bucket_count in zip(
                        instrument.buckets + (float("inf"),), child.bucket_counts
                    ):
                        cumulative += bucket_count
                        labels = _render_labels(
                            instrument.labelnames + ("le",),
                            labelvalues + (_format_value(bound),),
                        )
                        lines.append(f"{exposed}_bucket{labels} {cumulative}")
                    labels = _render_labels(instrument.labelnames, labelvalues)
                    lines.append(f"{exposed}_sum{labels} {repr(child.total)}")
                    lines.append(f"{exposed}_count{labels} {child.count}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-able snapshot of every instrument."""
        out: dict[str, dict] = {}
        for instrument in self.collect():
            if isinstance(instrument, (Counter, Gauge)):
                series = [
                    {
                        "labels": dict(zip(instrument.labelnames, labelvalues)),
                        "value": value,
                    }
                    for labelvalues, value in instrument.items()
                ]
            else:
                assert isinstance(instrument, Histogram)
                series = [
                    {
                        "labels": dict(zip(instrument.labelnames, labelvalues)),
                        "count": child.count,
                        "sum": child.total,
                        "buckets": {
                            _format_value(bound): bucket_count
                            for bound, bucket_count in zip(
                                instrument.buckets + (float("inf"),),
                                child.bucket_counts,
                            )
                        },
                    }
                    for labelvalues, child in instrument.items()
                ]
            out[instrument.name] = {
                "kind": instrument.kind,
                "help": instrument.help,
                "series": series,
            }
        return out

    # -- introspection ------------------------------------------------------

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._instruments

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MetricsRegistry {len(self.names())} instruments>"


def register_process_collector(registry: MetricsRegistry) -> None:
    """Attach the process-health collector: scrape-time gauges for RSS,
    garbage-collector state, and live thread count.

    ``/metrics`` previously exposed only engine-internal state; these
    gauges let an operator correlate query latency with what the process
    itself is doing (heap growth, GC pressure, thread leaks).  Pull
    model, stdlib only: ``resource.getrusage`` (``ru_maxrss`` is KB on
    Linux, bytes on macOS — normalized to bytes here), ``gc.get_count``
    / ``gc.get_stats``, ``threading.active_count``.
    """
    import gc
    import resource
    import sys

    # macOS reports ru_maxrss in bytes, Linux in kilobytes
    rss_scale = 1 if sys.platform == "darwin" else 1024

    def collect(reg: MetricsRegistry) -> None:
        usage = resource.getrusage(resource.RUSAGE_SELF)
        reg.set_gauge("process.max_rss_bytes", usage.ru_maxrss * rss_scale)
        for generation, count in enumerate(gc.get_count()):
            reg.set_gauge(
                "process.gc.objects", count, generation=str(generation)
            )
        for generation, stats in enumerate(gc.get_stats()):
            reg.set_gauge(
                "process.gc.collections",
                stats.get("collections", 0),
                generation=str(generation),
            )
        reg.set_gauge("process.threads", threading.active_count())

    registry.register_collector(collect)


#: the process-wide default registry (``Database`` attaches it unless a
#: private one is injected — tests asserting exact totals inject their own)
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
