"""Cost-model calibration: fitted coefficients from profiled query logs.

The cost model (:class:`repro.engine.context.CostModel`) prices operators
in abstract work units — only the *ratios* matter, because they decide
algorithm choices (hash vs nested loops, sort placement) and rewriting
rank.  Those ratios had never been validated against observed resource
usage.  This module closes the loop: given a qlog recording captured with
attributed profiling on (``cpu_ms`` per operator — see
:mod:`repro.engine.profiler`), it

1. reconstructs each record's operator tree from the flat pre-order
   ``operators`` list (the ``depth`` field), and computes every
   operator's **exclusive** CPU (inclusive minus children);
2. maps operator labels to **operator classes** (scan, filter,
   hash-join, nested-loops, stacktree-desc/anc, sort, group-by, …) and
   prices each operator in the cost model's own unit system from the
   *estimated* cardinalities the planner saw (sort pays ``n·log₂n``,
   nested loops pay the pair product, hash joins pay build+probe, the
   streaming operators pay linear);
3. fits, per class, a least-squares-through-origin coefficient
   ``cpu_ms ≈ coef · cost_units`` (``coef = Σxy / Σx²``);
4. flags classes whose coefficient is more than ``ratio_limit`` (default
   3×) away from the workload-wide coefficient — if the cost model were
   honest, "work units per CPU millisecond" would be one constant across
   classes, so a 3× outlier means that class's cost formula misprices
   real work by 3× relative to its peers.

The report is the evidence feed for the view advisor (ROADMAP) and a
standing honesty check on the numbers ``rank_rewritings`` runs on.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = [
    "OPERATOR_CLASSES",
    "classify",
    "ClassFit",
    "CalibrationReport",
    "calibrate_records",
]

#: label prefix → operator class, longest prefix wins
OPERATOR_CLASSES: tuple[tuple[str, str], ...] = (
    ("PScan", "scan"),
    ("PBase", "scan"),
    ("PBlockInput", "scan"),
    ("PFilter", "filter"),
    ("PProject", "project"),
    ("PConcat", "concat"),
    ("PDifference", "difference"),
    ("PHashJoin", "hash-join"),
    ("PNestedLoopsJoin", "nested-loops"),
    ("PStackTreeDesc", "stacktree-desc"),
    ("PStackTreeAnc", "stacktree-anc"),
    ("PSort", "sort"),
    ("PHashGroupBy", "group-by"),
    ("PLogicalFallback", "fallback"),
    ("BaseEval", "base-eval"),
)


def classify(label: str) -> str:
    for prefix, cls in OPERATOR_CLASSES:
        if label.startswith(prefix):
            return cls
    return "other"


# ---------------------------------------------------------------------------
# Tree reconstruction & cost units
# ---------------------------------------------------------------------------

@dataclass
class _OpNode:
    label: str
    est: Optional[float]
    actual: int
    cpu_ms: float
    children: list["_OpNode"] = field(default_factory=list)

    @property
    def self_cpu_ms(self) -> float:
        return max(0.0, self.cpu_ms - sum(c.cpu_ms for c in self.children))

    def rows(self) -> Optional[float]:
        """The cardinality the planner believed; None when unknown."""
        return None if self.est is None else float(self.est)


def _rebuild(operators: list[dict]) -> list[_OpNode]:
    """Flat pre-order rows with ``depth`` → forest of roots."""
    roots: list[_OpNode] = []
    stack: list[tuple[int, _OpNode]] = []
    for row in operators:
        node = _OpNode(
            label=row.get("label", "?"),
            est=row.get("est"),
            actual=int(row.get("actual", 0)),
            cpu_ms=float(row.get("cpu_ms", 0.0)),
        )
        depth = int(row.get("depth", 0))
        while stack and stack[-1][0] >= depth:
            stack.pop()
        if stack:
            stack[-1][1].children.append(node)
        else:
            roots.append(node)
        stack.append((depth, node))
    return roots


def _cost_units(node: _OpNode, cls: str) -> Optional[float]:
    """Price one operator in the cost model's unit system from the
    *estimated* cardinalities.  None = the planner had no estimate to
    calibrate against (the point is skipped and counted)."""
    child_rows = [c.rows() for c in node.children]
    if cls == "sort":
        n = node.rows()
        if n is None:
            return None
        return n * math.log2(n + 2)
    if cls == "nested-loops":
        if len(child_rows) < 2 or any(r is None for r in child_rows[:2]):
            return None
        return child_rows[0] * child_rows[1]
    if cls == "hash-join":
        if len(child_rows) < 2 or any(r is None for r in child_rows[:2]):
            return None
        # build the right side, probe once per left tuple
        return 2.0 * child_rows[1] + child_rows[0]
    if cls in ("stacktree-desc", "stacktree-anc", "group-by"):
        known = [r for r in child_rows if r is not None]
        if not known:
            return None
        return float(sum(known))
    # streaming operators: linear in their estimated output
    return node.rows()


# ---------------------------------------------------------------------------
# Fitting
# ---------------------------------------------------------------------------

@dataclass
class ClassFit:
    """Least-squares fit of one operator class."""

    operator_class: str
    points: int = 0
    skipped: int = 0  # operators without a usable estimate
    sum_units: float = 0.0
    sum_cpu_ms: float = 0.0
    _sxy: float = 0.0
    _sxx: float = 0.0

    def add(self, units: float, cpu_ms: float) -> None:
        self.points += 1
        self.sum_units += units
        self.sum_cpu_ms += cpu_ms
        self._sxy += units * cpu_ms
        self._sxx += units * units

    @property
    def coefficient(self) -> Optional[float]:
        """Fitted cpu_ms per cost unit (through the origin)."""
        if self._sxx <= 0.0:
            return None
        return self._sxy / self._sxx

    def as_dict(self) -> dict:
        return {
            "class": self.operator_class,
            "points": self.points,
            "skipped": self.skipped,
            "cost_units": round(self.sum_units, 2),
            "cpu_ms": round(self.sum_cpu_ms, 4),
            "coefficient": self.coefficient,
        }


@dataclass
class CalibrationReport:
    """Per-class coefficients plus the cross-class honesty verdict."""

    fits: dict[str, ClassFit]
    records: int
    profiled_records: int
    ratio_limit: float = 3.0

    @property
    def global_coefficient(self) -> Optional[float]:
        sxy = sum(f._sxy for f in self.fits.values())
        sxx = sum(f._sxx for f in self.fits.values())
        if sxx <= 0.0:
            return None
        return sxy / sxx

    def ratio(self, cls: str) -> Optional[float]:
        """Class coefficient relative to the workload-wide one: >1 means
        the class burns more CPU per estimated work unit than its peers
        (its cost formula *under*prices it)."""
        fit = self.fits.get(cls)
        overall = self.global_coefficient
        if fit is None or fit.coefficient is None or not overall:
            return None
        return fit.coefficient / overall

    def flagged(self) -> list[str]:
        out = []
        for cls in sorted(self.fits):
            ratio = self.ratio(cls)
            if ratio is not None and (
                ratio > self.ratio_limit or ratio < 1.0 / self.ratio_limit
            ):
                out.append(cls)
        return out

    @property
    def empty(self) -> bool:
        return all(fit.points == 0 for fit in self.fits.values())

    def as_dict(self) -> dict:
        flagged = set(self.flagged())
        classes = []
        for cls in sorted(self.fits):
            entry = self.fits[cls].as_dict()
            entry["ratio"] = self.ratio(cls)
            entry["flagged"] = cls in flagged
            classes.append(entry)
        return {
            "records": self.records,
            "profiled_records": self.profiled_records,
            "global_coefficient": self.global_coefficient,
            "ratio_limit": self.ratio_limit,
            "classes": classes,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """Human table: one row per exercised operator class."""
        if self.empty:
            return (
                "no profiled operators found — record the workload with "
                "profiling enabled (repro profile / $REPRO_PROFILE=1)"
            )
        header = (
            f"{'class':<16} {'points':>6} {'cost units':>12} "
            f"{'cpu ms':>10} {'coef':>12} {'ratio':>7}  verdict"
        )
        lines = [
            f"calibration over {self.profiled_records}/{self.records} "
            "profiled records",
            header,
            "-" * len(header),
        ]
        flagged = set(self.flagged())
        for cls in sorted(self.fits):
            fit = self.fits[cls]
            if fit.points == 0:
                continue
            coef = fit.coefficient
            ratio = self.ratio(cls)
            verdict = "MISPRICED >3x" if cls in flagged else "ok"
            lines.append(
                f"{cls:<16} {fit.points:>6} {fit.sum_units:>12.1f} "
                f"{fit.sum_cpu_ms:>10.2f} "
                f"{(f'{coef:.6f}' if coef is not None else '?'):>12} "
                f"{(f'{ratio:.2f}' if ratio is not None else '?'):>7}  "
                f"{verdict}"
            )
        overall = self.global_coefficient
        lines.append(
            "workload-wide coefficient: "
            + (f"{overall:.6f} cpu-ms/unit" if overall else "?")
        )
        if flagged:
            lines.append(
                "flagged classes (cost formula off by >"
                f"{self.ratio_limit:g}x vs peers): "
                + ", ".join(sorted(flagged))
            )
        else:
            lines.append("no class off by more than "
                         f"{self.ratio_limit:g}x — cost model consistent")
        return "\n".join(lines)


def calibrate_records(
    records: Iterable[dict], ratio_limit: float = 3.0
) -> CalibrationReport:
    """Fit per-class cost coefficients from qlog records.

    Only ``outcome == "ok"`` records whose operators carry ``cpu_ms``
    (i.e. captured under attributed profiling) contribute points; a
    recording without profiling yields an ``empty`` report rather than an
    error, so callers can give a targeted hint.
    """
    fits: dict[str, ClassFit] = {}
    total = 0
    profiled = 0
    for record in records:
        total += 1
        operators = record.get("operators") or []
        if record.get("outcome", "ok") != "ok":
            continue
        if not any("cpu_ms" in op for op in operators):
            continue
        profiled += 1
        for root in _rebuild(operators):
            stack = [root]
            while stack:
                node = stack.pop()
                stack.extend(node.children)
                cls = classify(node.label)
                fit = fits.setdefault(cls, ClassFit(cls))
                units = _cost_units(node, cls)
                if units is None or units <= 0.0:
                    fit.skipped += 1
                    continue
                fit.add(units, node.self_cpu_ms)
    return CalibrationReport(
        fits=fits,
        records=total,
        profiled_records=profiled,
        ratio_limit=ratio_limit,
    )
