"""Order descriptors (thesis §1.2.3).

Every physical operator advertises the attribute its output is ordered on
(``None`` when unordered).  The compiler uses descriptors to decide where
``Sort`` operators must be inserted so that structural joins — which
require both inputs ordered by their join identifiers — are correctly
piped into each other.

A descriptor is simply the ``/``-separated nesting path of the ordering
attribute, e.g. ``"e1.SID"`` or ``"e2/e2.SID"`` (ordering of members
inside the ``e2`` collection).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from ..algebra.model import NestedTuple

__all__ = ["sort_key_for", "satisfies", "project_order"]


def sort_key_for(path: str):
    """A sort key function over nested tuples for an order descriptor.

    ``None`` values sort first; heterogeneous atoms order by type name so
    sorting never raises.
    """

    def key(t: NestedTuple) -> Any:
        value = t.first(path)
        if value is None:
            return (0, "")
        return (1, type(value).__name__, value)

    return key


def satisfies(current: Optional[str], required: Optional[str]) -> bool:
    """Whether an operator ordered by ``current`` satisfies ``required``."""
    if required is None:
        return True
    return current == required


def project_order(
    order: Optional[str],
    columns: Sequence[str],
    renames: Optional[Mapping[str, str]] = None,
) -> Optional[str]:
    """The order descriptor surviving a projection.

    A projection keeps input order; the descriptor survives iff the
    ordering attribute's top-level column is among the projected columns
    (translated through ``renames``).  Order-preserving operators used to
    drop descriptors wholesale, forcing the compiler to insert redundant
    ``Sort``s below structural joins.
    """
    if order is None:
        return None
    head, sep, rest = order.partition("/")
    if head not in columns:
        return None
    if renames and head in renames:
        # renaming the column renames the first path step; the nested
        # remainder (if any) is untouched by Project's top-level renames
        head = renames[head]
    return head + sep + rest
