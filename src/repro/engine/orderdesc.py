"""Order descriptors (thesis §1.2.3).

Every physical operator advertises the attribute its output is ordered on
(``None`` when unordered).  The compiler uses descriptors to decide where
``Sort`` operators must be inserted so that structural joins — which
require both inputs ordered by their join identifiers — are correctly
piped into each other.

A descriptor is simply the ``/``-separated nesting path of the ordering
attribute, e.g. ``"e1.SID"`` or ``"e2/e2.SID"`` (ordering of members
inside the ``e2`` collection).
"""

from __future__ import annotations

from typing import Any, Optional

from ..algebra.model import NestedTuple

__all__ = ["sort_key_for", "satisfies"]


def sort_key_for(path: str):
    """A sort key function over nested tuples for an order descriptor.

    ``None`` values sort first; heterogeneous atoms order by type name so
    sorting never raises.
    """

    def key(t: NestedTuple) -> Any:
        value = t.first(path)
        if value is None:
            return (0, "")
        return (1, type(value).__name__, value)

    return key


def satisfies(current: Optional[str], required: Optional[str]) -> bool:
    """Whether an operator ordered by ``current`` satisfies ``required``."""
    if required is None:
        return True
    return current == required
