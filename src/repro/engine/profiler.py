"""Resource profiling: attributed per-operator CPU/memory + stack sampling.

PR 1's ``PlanMetrics`` records per-operator *wall* time, which says where
elapsed time went but not where the CPU or the allocations went — and the
cost units feeding ``rank_rewritings`` and the plan tournament had never
been checked against observed resource usage.  This module adds the two
collection modes that close the gap:

**Mode 1 — attributed profiling** (per query, opt-in via
``Database(profile=True)`` / ``$REPRO_PROFILE``).  Both executors already
observe every operator at block/tuple granularity; with
``ExecutionContext.profile`` set, those same observation points also read
``time.thread_time_ns()`` (per-thread CPU, so concurrent queries do not
bleed into each other) and sample ``tracemalloc``'s traced-allocation
counter, filling :attr:`OperatorMetrics.cpu_ns` and
:attr:`OperatorMetrics.peak_mem_bytes`.  The numbers flow into
``QueryResult``, EXPLAIN, the query log (``cpu_ms`` / ``peak_mem_kb``)
and — through :mod:`repro.engine.calibrate` — the cost-model calibration
report.

**Mode 2 — continuous sampling** (always-on capable).  A daemon thread
walks ``sys._current_frames()`` at a configurable rate, tags each worker
thread's stack with the active query span published by
:func:`repro.engine.tracing.active_spans`, and aggregates into
collapsed-stack form (``frame;frame;frame count``) — the input format of
flamegraph.pl and speedscope.  The aggregate is bounded: at most
``max_stacks`` distinct stacks are retained and overflow increments the
``profiler.dropped`` counter, so an always-on sampler cannot leak.

:class:`Profiler` is the facade the query service and HTTP endpoint
share: it owns the sampler plus a bounded ring of per-query attributed
profiles linked to trace ids.
"""

from __future__ import annotations

import os
import re
import sys
import threading
import tracemalloc
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "PROFILE_ENV_VAR",
    "resolve_profile",
    "traced_memory",
    "StackSampler",
    "QueryProfile",
    "Profiler",
    "valid_trace_id",
]

#: environment override for the attributed-profiling default, mirroring
#: ``$REPRO_EXECUTOR``: truthy values ("1", "true", "on", "yes") enable
PROFILE_ENV_VAR = "REPRO_PROFILE"

_TRUTHY = frozenset({"1", "true", "on", "yes"})
_FALSY = frozenset({"0", "false", "off", "no", ""})

#: trace ids are ``t`` + a lowercase hex counter (see tracing._next_id);
#: anything else on ``/profile?trace=`` is malformed, not merely unknown
_TRACE_ID_RE = re.compile(r"t[0-9a-f]{1,16}")


def resolve_profile(value) -> bool:
    """Resolve the attributed-profiling flag: explicit argument wins,
    then ``$REPRO_PROFILE``, then off.  Unrecognized strings raise — a
    typo silently disabling profiling would defeat the point."""
    if value is None:
        value = os.environ.get(PROFILE_ENV_VAR)
        if value is None:
            return False
    if isinstance(value, bool):
        return value
    text = str(value).strip().lower()
    if text in _TRUTHY:
        return True
    if text in _FALSY:
        return False
    raise ValueError(
        f"invalid profile setting {value!r}: expected one of "
        "true/false/on/off/1/0/yes/no"
    )


def valid_trace_id(trace_id: str) -> bool:
    return bool(_TRACE_ID_RE.fullmatch(trace_id))


# ---------------------------------------------------------------------------
# Bounded tracemalloc window
# ---------------------------------------------------------------------------

#: Default stride for the peak-memory column: attributed CPU costs two
#: clock reads per observation point and runs on every profiled query,
#: but a live tracemalloc session roughly doubles allocation cost — so
#: only every Nth profiled query per database opens the window (the
#: first always does).  ``Database.profile_memory_stride`` overrides.
MEM_SAMPLE_STRIDE = 16

_mem_lock = threading.Lock()
_mem_refs = 0
_mem_owner = False  # we called tracemalloc.start(); we must stop it


@contextmanager
def traced_memory(frames: int = 1) -> Iterator[None]:
    """Refcounted tracemalloc window: starts tracing (bounded to
    ``frames`` frames — depth 1 keeps the per-allocation overhead at its
    floor) when no window is open, and stops it when the last concurrent
    window closes *iff* this module started it.  An application that
    already runs tracemalloc keeps ownership."""
    global _mem_refs, _mem_owner
    with _mem_lock:
        if _mem_refs == 0 and not tracemalloc.is_tracing():
            tracemalloc.start(frames)
            _mem_owner = True
        _mem_refs += 1
    try:
        yield
    finally:
        with _mem_lock:
            _mem_refs -= 1
            if _mem_refs == 0 and _mem_owner:
                tracemalloc.stop()
                _mem_owner = False


# ---------------------------------------------------------------------------
# Mode 2: the continuous stack sampler
# ---------------------------------------------------------------------------

class StackSampler:
    """Background thread sampling every live thread's Python stack.

    Aggregation is collapsed-stack: one counter per distinct
    root-first ``;``-joined frame chain.  Worker threads running a traced
    query get a synthetic leading frame ``query:<span>`` (the innermost
    open lifecycle span), so flamegraphs separate parse/compile/execute
    time without symbol archaeology.  The sampler's own thread is
    excluded.

    Bounded by construction: ``max_stacks`` distinct chains and
    ``max_depth`` frames per chain; overflow counts into ``dropped`` (and
    the ``profiler.dropped`` registry counter when one is attached).
    """

    def __init__(
        self,
        hz: float = 19.0,
        registry=None,
        max_stacks: int = 4096,
        max_depth: int = 48,
    ):
        if hz <= 0:
            raise ValueError("sampler hz must be > 0")
        self.hz = float(hz)
        self.max_stacks = max_stacks
        self.max_depth = max_depth
        self.registry = registry
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.samples = 0
        self.dropped = 0

    # -- lifecycle ----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
        self._thread = None

    # -- the sampling loop --------------------------------------------------

    def _loop(self) -> None:
        interval = 1.0 / self.hz
        me = threading.get_ident()
        while not self._stop.wait(interval):
            self.sample_once(skip_ident=me)

    def sample_once(self, skip_ident: Optional[int] = None) -> int:
        """Take one sample of every thread; returns threads sampled.
        Public so tests can drive the aggregation deterministically
        without racing a live thread."""
        from .tracing import active_spans

        tags = active_spans()
        frames = sys._current_frames()
        taken = 0
        for ident, frame in frames.items():
            if ident == skip_ident:
                continue
            chain: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                chain.append(f"{code.co_name} ({code.co_filename.rsplit('/', 1)[-1]}:{frame.f_lineno})")
                frame = frame.f_back
                depth += 1
            chain.reverse()
            tag = tags.get(ident)
            if tag is not None:
                chain.insert(0, f"query:{tag[1]}")
            key = ";".join(chain)
            with self._lock:
                if key in self._counts:
                    self._counts[key] += 1
                elif len(self._counts) < self.max_stacks:
                    self._counts[key] = 1
                else:
                    self.dropped += 1
                    if self.registry is not None:
                        self.registry.inc("profiler.dropped")
                    continue
                self.samples += 1
            if self.registry is not None:
                self.registry.inc("profiler.samples")
            taken += 1
        return taken

    # -- exposition ---------------------------------------------------------

    def collapsed(self) -> str:
        """The aggregate in collapsed-stack text form, highest count
        first — pipe straight into flamegraph.pl or speedscope."""
        with self._lock:
            items = sorted(self._counts.items(), key=lambda kv: -kv[1])
        return "\n".join(f"{stack} {count}" for stack, count in items)

    def top_frames(self, n: int = 10) -> list[dict]:
        """Leaf-frame ranking: which function was on-CPU most often."""
        leaves: dict[str, int] = {}
        with self._lock:
            for stack, count in self._counts.items():
                leaf = stack.rsplit(";", 1)[-1]
                leaves[leaf] = leaves.get(leaf, 0) + count
        ranked = sorted(leaves.items(), key=lambda kv: -kv[1])[:n]
        return [{"frame": frame, "samples": count} for frame, count in ranked]

    def snapshot(self) -> dict:
        with self._lock:
            distinct = len(self._counts)
        return {
            "running": self.running,
            "hz": self.hz,
            "samples": self.samples,
            "dropped": self.dropped,
            "distinct_stacks": distinct,
            "top": self.top_frames(),
        }


# ---------------------------------------------------------------------------
# Attributed per-query profiles
# ---------------------------------------------------------------------------

@dataclass
class QueryProfile:
    """The attributed resource profile of one executed query."""

    trace_id: str
    query: str
    executor: str
    seconds: float
    #: flat pre-order operator rows: label / est / actual / wall ms /
    #: inclusive cpu ms / exclusive cpu ms / peak traced KB
    operators: list[dict] = field(default_factory=list)

    @property
    def cpu_ms(self) -> float:
        """Inclusive CPU of the plan roots (depth-0 operators)."""
        return sum(op["cpu_ms"] for op in self.operators if op["depth"] == 0)

    def top_cpu(self, n: int = 3) -> list[dict]:
        ranked = [op for op in self.operators if op["self_cpu_ms"] > 0]
        ranked.sort(key=lambda op: -op["self_cpu_ms"])
        return ranked[:n]

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "query": self.query,
            "executor": self.executor,
            "seconds": self.seconds,
            "cpu_ms": self.cpu_ms,
            "operators": list(self.operators),
        }

    @classmethod
    def from_result(cls, query: str, result, seconds: float) -> "QueryProfile":
        """Flatten a ``QueryResult``'s metrics trees (one per executed
        plan) into profile rows."""
        operators: list[dict] = []

        def visit(node, depth: int) -> None:
            operators.append(
                {
                    "label": node.label,
                    "depth": depth,
                    "est": node.estimated_rows,
                    "actual": node.rows_out,
                    "ms": round(node.elapsed * 1000, 4),
                    "cpu_ms": round(node.cpu_ns / 1e6, 4),
                    "self_cpu_ms": round(node.self_cpu_ns / 1e6, 4),
                    "peak_mem_kb": round(node.peak_mem_bytes / 1024, 2),
                }
            )
            for child in node.children:
                visit(child, depth + 1)

        for plan_metrics in getattr(result, "metrics", ()) or ():
            visit(plan_metrics.root, 0)
        return cls(
            trace_id=getattr(result, "trace_id", None) or "",
            query=query,
            executor=getattr(result, "executor", "") or "",
            seconds=seconds,
            operators=operators,
        )


class Profiler:
    """Facade over both collection modes, owned by the query service.

    * ``record(query, result, seconds)`` files an attributed
      :class:`QueryProfile` into a bounded trace-id-keyed ring;
    * the optional :class:`StackSampler` (``sample_hz``) runs
      continuously and feeds ``/flamegraph``;
    * ``payload()`` / ``for_trace()`` back the ``/profile`` HTTP route.
    """

    def __init__(
        self,
        registry=None,
        sample_hz: Optional[float] = None,
        ring_capacity: int = 128,
    ):
        self.registry = registry
        self.ring_capacity = ring_capacity
        self._ring: "OrderedDict[str, QueryProfile]" = OrderedDict()
        self._lock = threading.Lock()
        self._recorded = 0
        self.sampler: Optional[StackSampler] = (
            StackSampler(hz=sample_hz, registry=registry)
            if sample_hz
            else None
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self.sampler is not None:
            self.sampler.start()

    def stop(self) -> None:
        if self.sampler is not None:
            self.sampler.stop()

    # -- attributed ring ----------------------------------------------------

    def record(self, query: str, result, seconds: float) -> Optional[QueryProfile]:
        profile = QueryProfile.from_result(query, result, seconds)
        if not profile.operators:
            return None
        key = profile.trace_id or f"untraced-{self._recorded}"
        with self._lock:
            self._recorded += 1
            self._ring[key] = profile
            while len(self._ring) > self.ring_capacity:
                self._ring.popitem(last=False)
        if self.registry is not None:
            self.registry.inc("profiler.queries")
        return profile

    def for_trace(self, trace_id: str) -> Optional[QueryProfile]:
        with self._lock:
            return self._ring.get(trace_id)

    def profiles(self) -> list[QueryProfile]:
        """Ring contents, oldest first."""
        with self._lock:
            return list(self._ring.values())

    @property
    def recorded(self) -> int:
        with self._lock:
            return self._recorded

    # -- exposition ---------------------------------------------------------

    def payload(self) -> dict:
        profiles = self.profiles()
        return {
            "recorded": self.recorded,
            "ring": [
                {
                    "trace_id": p.trace_id,
                    "query": p.query,
                    "executor": p.executor,
                    "seconds": p.seconds,
                    "cpu_ms": p.cpu_ms,
                    "top_cpu": [
                        f"{op['label']} cpu={op['self_cpu_ms']:.2f}ms"
                        for op in p.top_cpu()
                    ],
                }
                for p in reversed(profiles)
            ],
            "sampler": self.sampler.snapshot() if self.sampler else None,
        }

    def flamegraph(self) -> Optional[str]:
        if self.sampler is None:
            return None
        return self.sampler.collapsed()
