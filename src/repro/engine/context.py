"""The execution context: one object threading the plan lifecycle together.

The thesis' central promise (§1.2.3–§1.2.4) is that the optimizer picks
among XAM-described access paths; the *quality* of that choice — and the
ability to observe it — is what physical data independence buys.  Before
this module, plan compilation (:func:`repro.engine.physical.compile_plan`),
rewriting selection (:func:`repro.core.statistics.rank_rewritings`) and
execution were wired ad hoc: no shared statistics, no runtime metrics, no
way to ask "why this plan?".

:class:`ExecutionContext` is the shared spine:

* a **statistics provider** answering "how many tuples does this base
  relation / tree pattern hold?" (summary- or store-backed);
* a **cost model** turning those cardinalities into operator costs, so the
  compiler chooses join algorithms and sort placement from estimates
  rather than fixed rules;
* a set of **tunables** (selectivities, per-tuple cost constants) in one
  place instead of scattered literals;
* an **operator registry** mapping logical operator types to lowering
  functions, so new physical operators plug in without editing the
  compiler;
* a **metrics sink**: :meth:`ExecutionContext.instrument` attaches an
  :class:`OperatorMetrics` node to every physical operator, and execution
  records tuples-in/out and wall time into the resulting
  :class:`PlanMetrics` tree — the "actual" column of EXPLAIN.

The module is deliberately independent of the physical operators (the
compiler imports *it*, not the other way around), so the core and CLI
layers can build contexts without pulling the whole engine in.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Optional

__all__ = [
    "Tunables",
    "CostModel",
    "StatisticsProvider",
    "EmptyStatistics",
    "OperatorMetrics",
    "PlanMetrics",
    "ExecutionContext",
    "EXEC_CTX_KEY",
]

#: reserved data-context key under which :meth:`ExecutionContext.run` (and
#: the database's rewriting executor) exposes the execution context to
#: operators at runtime — read with ``context.get(EXEC_CTX_KEY)``, which
#: bypasses the fault-checked ``__getitem__`` of store contexts.  Operators
#: use it to bump counters (e.g. ``fallback.materialized_rows``) without
#: pinning a context onto cached plans.
EXEC_CTX_KEY = "__execution_context__"


# ---------------------------------------------------------------------------
# Tunables & cost model
# ---------------------------------------------------------------------------

@dataclass
class Tunables:
    """Knobs of the estimator and cost model, gathered in one place.

    Cost constants are abstract "work units per tuple"; only their ratios
    matter (they decide algorithm choices, not absolute predictions).
    """

    #: selectivity of a value predicate on a pattern node / σ operator
    predicate_selectivity: float = 0.1
    #: selectivity of an equality value-join predicate (per tuple pair)
    equality_join_selectivity: float = 0.1
    #: expected matches per qualifying pair of a structural join
    structural_selectivity: float = 0.5
    #: fraction of distinct tuples surviving a duplicate-eliminating π⁰ / γ
    dedup_factor: float = 0.5
    #: average member count of an unnested collection
    collection_fanout: float = 2.0
    #: assumed size of a base relation with no statistics at all
    unknown_relation_size: float = 1000.0
    #: per-tuple cost of inserting into a hash table (build side)
    hash_build_cost: float = 2.0
    #: per-tuple cost of probing a hash table
    hash_probe_cost: float = 1.0
    #: per-pair cost of a nested-loops predicate evaluation
    nested_loops_pair_cost: float = 1.0
    #: per-tuple cost factor of a B+-tree sort (times log₂ n)
    sort_tuple_cost: float = 1.0


class CostModel:
    """Cardinalities → operator costs → algorithm choices.

    The compiler asks :meth:`choose_join`; benchmarks and tests can ask
    the raw cost functions to assert *why*.
    """

    def __init__(self, tunables: Optional[Tunables] = None):
        self.tunables = tunables or Tunables()

    def _known(self, rows: Optional[float]) -> float:
        if rows is None:
            return self.tunables.unknown_relation_size
        return max(float(rows), 0.0)

    def nested_loops_cost(self, left: Optional[float], right: Optional[float]) -> float:
        """Materialize right, evaluate the predicate on every pair."""
        l, r = self._known(left), self._known(right)
        return self.tunables.nested_loops_pair_cost * l * r

    def hash_join_cost(self, left: Optional[float], right: Optional[float]) -> float:
        """Build a table on right, probe once per left tuple."""
        l, r = self._known(left), self._known(right)
        return self.tunables.hash_build_cost * r + self.tunables.hash_probe_cost * l

    def sort_cost(self, rows: Optional[float]) -> float:
        import math

        n = self._known(rows)
        return self.tunables.sort_tuple_cost * n * math.log2(n + 2)

    def choose_join(self, left: Optional[float], right: Optional[float]) -> str:
        """``"hash"`` or ``"nested"`` for an equality value join.

        Tiny inputs do not amortize the hash-table build; everything else
        does.  Ties go to the hash join (it scales, the loops do not).
        """
        if self.nested_loops_cost(left, right) < self.hash_join_cost(left, right):
            return "nested"
        return "hash"


# ---------------------------------------------------------------------------
# Statistics providers
# ---------------------------------------------------------------------------

class StatisticsProvider:
    """What the estimator may ask about the database.

    ``None`` answers mean "unknown"; the cost model substitutes
    :attr:`Tunables.unknown_relation_size`.
    """

    def relation_size(self, name: str) -> Optional[float]:
        raise NotImplementedError

    def pattern_cardinality(self, pattern) -> Optional[float]:
        raise NotImplementedError


class EmptyStatistics(StatisticsProvider):
    """No statistics at all (stand-alone ``compile_plan`` calls)."""

    def relation_size(self, name: str) -> Optional[float]:
        return None

    def pattern_cardinality(self, pattern) -> Optional[float]:
        return None


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

@dataclass
class OperatorMetrics:
    """Runtime record of one physical operator.

    ``elapsed`` is inclusive wall time: seconds spent pulling this
    operator's iterator, children included (a child's time is also part of
    every ancestor's).  ``rows_in`` derives from the children's outputs.
    """

    label: str
    estimated_rows: Optional[float] = None
    rows_out: int = 0
    elapsed: float = 0.0
    executions: int = 0
    #: inclusive thread CPU time (``time.thread_time_ns``) spent pulling
    #: this operator, children included; stays 0 unless the query ran with
    #: attributed profiling enabled
    cpu_ns: int = 0
    #: peak traced allocation (bytes) observed while this operator ran —
    #: the high-water delta between operator open and close under a
    #: bounded ``tracemalloc`` window; 0 unless profiling was enabled
    peak_mem_bytes: int = 0
    children: list["OperatorMetrics"] = field(default_factory=list)

    @property
    def rows_in(self) -> int:
        return sum(child.rows_out for child in self.children)

    @property
    def self_cpu_ns(self) -> int:
        """Exclusive CPU: inclusive minus the children's inclusive CPU
        (clamped — clock granularity can make a child appear costlier
        than its parent)."""
        return max(0, self.cpu_ns - sum(child.cpu_ns for child in self.children))

    def walk(self) -> Iterator["OperatorMetrics"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def pretty(self, indent: int = 0) -> str:
        est = "?" if self.estimated_rows is None else f"{self.estimated_rows:.1f}"
        line = (
            f"{'  ' * indent}{self.label}  "
            f"[est={est} act={self.rows_out} time={self.elapsed * 1000:.2f}ms"
        )
        if self.cpu_ns or self.peak_mem_bytes:
            line += (
                f" cpu={self.cpu_ns / 1e6:.2f}ms"
                f" mem={self.peak_mem_bytes / 1024:.1f}KB"
            )
        line += "]"
        lines = [line]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


@dataclass
class PlanMetrics:
    """The metrics tree of one executed physical plan."""

    root: OperatorMetrics

    def walk(self) -> Iterator[OperatorMetrics]:
        return self.root.walk()

    def pretty(self) -> str:
        return self.root.pretty()

    def total_rows(self) -> int:
        return self.root.rows_out

    def find(self, label_prefix: str) -> list[OperatorMetrics]:
        return [m for m in self.walk() if m.label.startswith(label_prefix)]

    def total_cpu_ns(self) -> int:
        """Inclusive CPU of the whole plan (the root's attribution)."""
        return self.root.cpu_ns

    def top_cpu(self, n: int = 3) -> list[OperatorMetrics]:
        """The ``n`` operators with the largest *exclusive* CPU share —
        empty when the plan ran without attributed profiling."""
        ranked = [m for m in self.walk() if m.self_cpu_ns > 0]
        ranked.sort(key=lambda m: m.self_cpu_ns, reverse=True)
        return ranked[:n]


# ---------------------------------------------------------------------------
# The context itself
# ---------------------------------------------------------------------------

#: a lowering function: (logical op, recursive lower, context) → physical op
LoweringFn = Callable[[Any, Callable, "ExecutionContext"], Any]


class ExecutionContext:
    """Shared state of one query's compile-and-execute lifecycle.

    ``uload.Database`` builds one per query; stand-alone engine users get
    a default one with empty statistics.  The context owns:

    * :attr:`statistics` / :attr:`cost_model` / :attr:`tunables` — the
      estimator stack;
    * :attr:`registry` — ``{logical type: lowering function}`` overrides
      consulted by :func:`repro.engine.physical.compile_plan` before its
      built-in rules;
    * :attr:`metrics` — one :class:`PlanMetrics` per instrumented plan,
      in instrumentation order (the sink EXPLAIN reads from).
    """

    def __init__(
        self,
        statistics: Optional[StatisticsProvider] = None,
        cost_model: Optional[CostModel] = None,
        tunables: Optional[Tunables] = None,
        registry: Optional[Mapping[type, LoweringFn]] = None,
        metrics_registry=None,
    ):
        self.tunables = tunables or Tunables()
        self.statistics = statistics or EmptyStatistics()
        self.cost_model = cost_model or CostModel(self.tunables)
        self.registry: dict[type, LoweringFn] = dict(registry or {})
        self.metrics: list[PlanMetrics] = []
        #: named event counters threaded through the lifecycle (the query
        #: service records plan-cache hits/misses here; EXPLAIN and
        #: ``query(stats=True)`` surface them next to the plan metrics)
        self.counters: dict[str, float] = {}
        #: optional process-wide
        #: :class:`~repro.engine.metrics.MetricsRegistry` that every
        #: :meth:`bump` is forwarded to — the invariant the stress suite
        #: checks is that registry totals equal the sum of the per-query
        #: ``counters`` dicts
        self.metrics_registry = metrics_registry
        #: optional :class:`~repro.engine.tracing.Trace` of this query's
        #: lifecycle; None disables tracing (``span`` / ``event`` become
        #: single-branch no-ops)
        self.trace = None
        #: optional :class:`~repro.engine.faults.FaultInjector` activated
        #: around this query's execution (chaos mode); None in production
        self.fault_injector = None
        #: which execution engine this query runs under: ``"iter"`` (the
        #: per-tuple iterator interpreter — the default for stand-alone
        #: contexts, which never receive batch closures) or ``"batch"``
        #: (set by ``Database.execution_context`` when the batch executor
        #: is selected).  Recorded into results and the query log.
        self.executor = "iter"
        #: attributed resource profiling: when True, both executors pay
        #: the extra ``thread_time_ns`` reads per observation point and a
        #: bounded tracemalloc window, filling ``OperatorMetrics.cpu_ns``
        #: and ``peak_mem_bytes``.  Off by default — the unprofiled hot
        #: path must not grow even a branch on a flag read per tuple.
        self.profile = False
        #: whether THIS profiled run opens the tracemalloc window for the
        #: peak-memory column.  CPU attribution is near-free and runs on
        #: every profiled query; live tracemalloc roughly doubles
        #: allocation cost, so ``Database.execution_context`` samples it
        #: every ``profile_memory_stride``-th profiled query (stand-alone
        #: contexts default to sampling every run).
        self.mem_sample = True
        self._estimates: dict[int, Optional[float]] = {}

    # -- counters -----------------------------------------------------------

    def bump(self, name: str, value: float = 1.0) -> None:
        """Increment a named counter in the metrics sink (and its
        process-wide mirror, when a registry is attached)."""
        self.counters[name] = self.counters.get(name, 0.0) + value
        if self.metrics_registry is not None:
            self.metrics_registry.inc(name, value)

    # -- tracing ------------------------------------------------------------

    @property
    def trace_id(self) -> Optional[str]:
        return self.trace.trace_id if self.trace is not None else None

    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[Any]:
        """A lifecycle span covering the ``with`` body; no-op when tracing
        is off.  An escaping exception marks the span (and, through
        :meth:`end_trace`, the trace) as errored."""
        if self.trace is None:
            yield None
            return
        span = self.trace.start_span(name, **attributes)
        try:
            yield span
        except BaseException as error:
            self.trace.finish_span(
                span, status="error", error=type(error).__name__
            )
            raise
        else:
            self.trace.finish_span(span)

    def event(self, name: str, **attributes) -> None:
        """A zero-duration point event in the trace; no-op when off."""
        if self.trace is not None:
            self.trace.event(name, **attributes)

    def end_trace(self, status: str = "ok") -> None:
        """Close this query's trace (idempotent — retries re-enter the
        execution path on the same context, and only the outcome that
        sticks should close the root)."""
        if self.trace is not None and not self.trace.done:
            self.trace.finish(status)

    # -- estimation ---------------------------------------------------------

    def estimate(self, op) -> Optional[float]:
        """Estimated output cardinality of a logical operator (cached by
        node identity, so shared subtrees are walked once)."""
        key = id(op)
        if key not in self._estimates:
            self._estimates[key] = op.estimated_cardinality(self)
        return self._estimates[key]

    # -- compilation --------------------------------------------------------

    def compile(self, logical, scan_orders: Optional[Mapping[str, str]] = None):
        """Lower a logical plan through the cost-based compiler."""
        from .physical import compile_plan

        with self.span("compile"):
            return compile_plan(logical, scan_orders, context=self)

    # -- instrumentation & execution ---------------------------------------

    def instrument(self, physical) -> PlanMetrics:
        """Attach a fresh metrics node to every operator of a physical
        plan; execution then records into them."""

        profiled = bool(self.profile)

        def build(op) -> OperatorMetrics:
            node = OperatorMetrics(
                label=op.label(), estimated_rows=op.estimated_rows
            )
            node.children = [build(child) for child in op.children]
            op.metrics = node
            # must be (re)stamped every time: compiled plans are cached
            # and reused across queries with different profile settings
            op.profiled = profiled
            return node

        plan_metrics = PlanMetrics(build(physical))
        self.metrics.append(plan_metrics)
        return plan_metrics

    def run(
        self, physical, data_context=None, batch_fn=None
    ) -> tuple[list, PlanMetrics]:
        """Instrument, execute to completion, and return (tuples, metrics).

        ``batch_fn`` is an optional compiled batch closure for the same
        plan (see :func:`repro.engine.batch.compile_batch`); when given,
        it executes in place of the iterator walk — metrics land in the
        same instrumented nodes, accumulated per block instead of per
        tuple.  Either way the context publishes itself into the data
        context under :data:`EXEC_CTX_KEY` so operators can reach the
        counter sink at runtime.
        """
        plan_metrics = self.instrument(physical)
        if data_context is not None:
            try:
                data_context[EXEC_CTX_KEY] = self
            except TypeError:  # read-only mapping: operators just lose counters
                pass
        if self.profile:
            # the peak-memory column needs tracemalloc live, but tracing
            # roughly doubles allocation cost — only the sampled runs
            # (``mem_sample``) open the refcounted window; the others
            # still attribute CPU, and the observation points read
            # (0, 0) from the idle tracer so the memory column stays 0
            from .profiler import traced_memory

            window = traced_memory() if self.mem_sample else nullcontext()
            with window:
                cpu_started = time.thread_time_ns()
                if batch_fn is not None:
                    tuples = batch_fn(data_context).tuples
                else:
                    tuples = list(physical.execute(data_context))
                drive_cpu = time.thread_time_ns() - cpu_started
            # the drive loop and the observation points themselves burn
            # CPU between operator windows; fold that overhead into the
            # root's inclusive time (it surfaces as root self-CPU), so
            # attributed CPU accounts for the whole plan execution
            if drive_cpu > plan_metrics.root.cpu_ns:
                plan_metrics.root.cpu_ns = drive_cpu
        elif batch_fn is not None:
            tuples = batch_fn(data_context).tuples
        else:
            tuples = list(physical.execute(data_context))
        return tuples, plan_metrics

    # -- timing primitive used by the physical layer ------------------------

    @staticmethod
    def clock() -> float:
        return time.perf_counter()
