"""Batch (columnar-block) execution and plan-to-closure compilation.

The iterator engine of :mod:`repro.engine.physical` pays Python generator
machinery per tuple per operator — and, when instrumented, two
``perf_counter`` calls per tuple on top.  This module trades that for
block-at-a-time execution: :func:`compile_batch` lowers a compiled
physical plan into one specialized closure per operator, each consuming
and producing a :class:`Block` (the tuple list plus lazily extracted
parallel arrays of structural IDs and the order descriptor).  The closure
tree *is* the compiled artifact the fingerprint-keyed plan cache stores
(:class:`repro.engine.plan_cache.CompiledPlanArtifact`).

Semantics are bit-for-bit those of the iterator engine:

* every operator produces tuples in the same order (sorts reuse
  :func:`~repro.engine.orderdesc.sort_key_for` and Python's stable sort,
  which reproduces the B+-tree's duplicate-bucket order; hash joins and
  group-bys keep insertion/first-seen order);
* children are evaluated in the order the iterator algorithms consume
  them (build side first for hash/nested-loops joins and difference,
  ancestors before descendants for the stack-tree joins), so seeded
  chaos fault injection draws the same RNG sequence under either engine;
* the stack-tree structural joins run as merge passes over pre-extracted
  sorted ID arrays instead of generator chains — same stack discipline,
  integer-indexed.

Cold operators (``PLogicalFallback``, ``PConcat``, ``PDifference``) are
not rewritten: :class:`PBlockInput` adapts a compiled batch closure back
into an iterator-model child, so their original ``_run`` algorithms
execute unmodified over batch-produced inputs.  A plan containing any
*other* operator type is not covered (:func:`batch_covered` is False) and
the caller falls back to the iterator engine for the whole plan.

Metrics stay exact: each closure reads its operator's ``metrics`` node at
call time and accumulates actual rows per block and inclusive wall time
per operator — the same quantities the iterator engine's per-tuple
``_record`` wrapper maintains, at block granularity.
"""

from __future__ import annotations

import copy
import time
import tracemalloc
from typing import Callable, List, Optional

from ..algebra.model import NestedTuple, concat
from .physical import (
    PBase,
    PConcat,
    PDifference,
    PFilter,
    PHashGroupBy,
    PHashJoin,
    PLogicalFallback,
    PNestedLoopsJoin,
    PProject,
    PScan,
    PSort,
    PStackTreeAnc,
    PStackTreeDesc,
    PhysicalOperator,
    _covers,
    _emit_variant,
    _is_rel,
    _pre,
    _sid,
)
from .orderdesc import sort_key_for

__all__ = [
    "Block",
    "BatchUnsupported",
    "PBlockInput",
    "BatchFn",
    "batch_covered",
    "compile_batch",
]

#: a compiled batch closure: evaluation context in, one Block out
BatchFn = Callable[[Optional[dict]], "Block"]


class Block:
    """One batch of tuples flowing between operators.

    ``tuples`` is the row list (never mutated by consumers — operators
    build fresh lists); ``order`` is the order descriptor the block is
    sorted by (``None`` = unordered).  Column arrays are extracted lazily
    and cached, so a structural join asking for the ID and pre-rank
    columns of its sorted inputs pays the per-tuple attribute walk once.
    """

    __slots__ = ("tuples", "order", "_columns")

    def __init__(self, tuples: List[NestedTuple], order: Optional[str] = None):
        self.tuples = tuples
        self.order = order
        self._columns: Optional[dict] = None

    def __len__(self) -> int:
        return len(self.tuples)

    def _cache(self) -> dict:
        if self._columns is None:
            self._columns = {}
        return self._columns

    def column(self, attr: str) -> list:
        """Parallel array of ``t.get(attr)`` values."""
        cache = self._cache()
        col = cache.get(("v", attr))
        if col is None:
            col = cache[("v", attr)] = [t.get(attr) for t in self.tuples]
        return col

    def id_column(self, attr: str) -> list:
        """Parallel array of validated structural identifiers."""
        cache = self._cache()
        col = cache.get(("id", attr))
        if col is None:
            col = cache[("id", attr)] = [_sid(t, attr) for t in self.tuples]
        return col

    def pre_column(self, attr: str) -> list:
        """Parallel array of document-order (pre) ranks of the IDs."""
        cache = self._cache()
        col = cache.get(("pre", attr))
        if col is None:
            col = cache[("pre", attr)] = [_pre(i) for i in self.id_column(attr)]
        return col

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block n={len(self.tuples)} order={self.order!r}>"


class BatchUnsupported(Exception):
    """The plan contains an operator the batch engine does not cover."""


class PBlockInput(PhysicalOperator):
    """Block→iterator adapter.

    Presents a compiled batch closure as an iterator-model child, so
    adapted (cold) operators run their original ``_run`` algorithms
    unmodified over batch-produced inputs.  The closure is invoked when
    the parent first pulls the iterator — the same point the iterator
    engine would start the child subtree — keeping fault-injection draw
    order identical across engines.
    """

    def __init__(self, fn: BatchFn, template: PhysicalOperator):
        self.fn = fn
        self.output_order = template.output_order
        self.estimated_rows = template.estimated_rows

    def _run(self, context=None):
        return iter(self.fn(context).tuples)

    def label(self) -> str:
        return "PBlockInput"


# ---------------------------------------------------------------------------
# Coverage
# ---------------------------------------------------------------------------

#: operators with a native batch implementation
_HOT = (
    PScan,
    PBase,
    PFilter,
    PProject,
    PSort,
    PHashGroupBy,
    PHashJoin,
    PNestedLoopsJoin,
    PStackTreeDesc,
    PStackTreeAnc,
)

#: cold operators run unmodified behind the PBlockInput adapter
_ADAPTED = (PConcat, PDifference, PLogicalFallback)

_COVERED = _HOT + _ADAPTED + (PBlockInput,)


def batch_covered(physical: PhysicalOperator) -> bool:
    """Whether every operator of the plan is either batch-native or
    adapted; False means the caller must run the iterator engine (the
    per-plan ``executor.fallback`` path)."""
    return all(isinstance(op, _COVERED) for op in physical.walk())


# ---------------------------------------------------------------------------
# Per-operator closure builders
# ---------------------------------------------------------------------------

def _observed(op: PhysicalOperator, fn: BatchFn) -> BatchFn:
    """Wrap a closure with metrics accounting against the operator's
    (dynamically attached) metrics node: inclusive wall time per call,
    actual rows per block — the batch-granularity equivalent of the
    iterator engine's per-tuple ``_record``."""
    clock = time.perf_counter

    def run(context):
        m = op.metrics
        if m is None:
            return fn(context)
        if op.profiled:
            # attributed profiling: the closure runs its whole block in
            # one call, so open/close snapshots bound the operator exactly
            m.executions += 1
            mem_base = tracemalloc.get_traced_memory()[0]
            started = clock()
            cpu_started = time.thread_time_ns()
            block = fn(context)
            m.cpu_ns += time.thread_time_ns() - cpu_started
            m.elapsed += clock() - started
            peak = tracemalloc.get_traced_memory()[0] - mem_base
            if peak > m.peak_mem_bytes:
                m.peak_mem_bytes = peak
            m.rows_out += len(block.tuples)
            return block
        m.executions += 1
        started = clock()
        block = fn(context)
        m.elapsed += clock() - started
        m.rows_out += len(block.tuples)
        return block

    return run


def _scan(op: PScan) -> BatchFn:
    name, missing_ok, order = op.name, op.missing_ok, op.output_order

    def fn(context):
        if context is None or name not in context:
            if missing_ok:
                return Block([], order)
            raise KeyError(f"base relation {name!r} missing from context")
        # context[name] fires the relation.scan fault point, exactly as
        # the iterator PScan does; the copy keeps store state unaliased
        return Block(list(context[name]), order)

    return fn


def _base(op: PBase) -> BatchFn:
    def fn(context):
        return Block(list(op.tuples), op.output_order)

    return fn


def _filter(op: PFilter, child: BatchFn) -> BatchFn:
    predicate, order = op.predicate, op.output_order

    def fn(context):
        return Block(
            [t for t in child(context).tuples if predicate(t)], order
        )

    return fn


def _project(op: PProject, child: BatchFn) -> BatchFn:
    columns, renames, dedup = op.columns, op.renames, op.dedup
    order = op.output_order

    def fn(context):
        rows = child(context).tuples
        if renames:
            projected = [t.project(columns).rename(renames) for t in rows]
        else:
            projected = [t.project(columns) for t in rows]
        if dedup:
            seen: set = set()
            kept = []
            for p in projected:
                key = p.freeze()
                if key not in seen:
                    seen.add(key)
                    kept.append(p)
            projected = kept
        return Block(projected, order)

    return fn


def _sort(op: PSort, child: BatchFn) -> BatchFn:
    # Python's stable sort over sort_key_for reproduces the B+-tree's
    # order exactly: equal keys append to a bucket in insertion order
    # there, and stability preserves input order here.
    key = sort_key_for(op.path)
    path = op.path

    def fn(context):
        return Block(sorted(child(context).tuples, key=key), path)

    return fn


def _group_by(op: PHashGroupBy, child: BatchFn) -> BatchFn:
    keys, nest_as, order = op.keys, op.nest_as, op.output_order

    def fn(context):
        groups: dict = {}
        heads: dict = {}
        first_seen: list = []
        for t in child(context).tuples:
            head = t.project(keys)
            key = head.freeze()
            if key not in groups:
                groups[key] = []
                heads[key] = head
                first_seen.append(key)
            groups[key].append(t.drop(keys))
        return Block(
            [
                heads[key].with_attrs(**{nest_as: groups[key]})
                for key in first_seen
            ],
            order,
        )

    return fn


def _hash_join(op: PHashJoin, left: BatchFn, right: BatchFn) -> BatchFn:
    left_attr, right_attr = op.left_attr, op.right_attr
    kind, nest_as, right_columns = op.kind, op.nest_as, op.right_columns
    order = op.output_order

    def fn(context):
        # build side first — the order the iterator algorithm consumes
        # its children in (fault-draw parity)
        table: dict = {}
        for r in right(context).tuples:
            key = r.first(right_attr)
            if key is not None:
                table.setdefault(key, []).append(r)
        out: list = []
        if kind == "j":
            append = out.append
            for lt in left(context).tuples:
                key = lt.first(left_attr)
                if key is None:
                    continue
                bucket = table.get(key)
                if bucket:
                    for m in bucket:
                        append(concat(lt, m))
        else:
            extend = out.extend
            for lt in left(context).tuples:
                key = lt.first(left_attr)
                matches = table.get(key, []) if key is not None else []
                extend(
                    _emit_variant(kind, lt, matches, nest_as, right_columns)
                )
        return Block(out, order)

    return fn


def _nested_loops(op: PNestedLoopsJoin, left: BatchFn, right: BatchFn) -> BatchFn:
    match, kind = op.match, op.kind
    nest_as, right_columns = op.nest_as, op.right_columns
    order = op.output_order

    def fn(context):
        right_rows = right(context).tuples  # blocks on the right input
        out: list = []
        extend = out.extend
        for lt in left(context).tuples:
            matches = [r for r in right_rows if match(lt, r)]
            extend(_emit_variant(kind, lt, matches, nest_as, right_columns))
        return Block(out, order)

    return fn


def _stack_tree_desc(op: PStackTreeDesc, left: BatchFn, right: BatchFn) -> BatchFn:
    anc_attr, desc_attr, axis = op.anc_attr, op.desc_attr, op.axis
    order = op.output_order

    def fn(context):
        anc_block = left(context)
        desc_block = right(context)
        anc_rows = anc_block.tuples
        desc_rows = desc_block.tuples
        anc_ids = anc_block.id_column(anc_attr)
        anc_pres = anc_block.pre_column(anc_attr)
        desc_ids = desc_block.id_column(desc_attr)
        desc_pres = desc_block.pre_column(desc_attr)
        out: list = []
        append = out.append
        stack: list = []  # (anc_id, anc_tuple)
        a, n_anc = 0, len(anc_rows)
        for d in range(len(desc_rows)):
            desc_id = desc_ids[d]
            desc_pre = desc_pres[d]
            # Push every ancestor starting before this descendant.
            while a < n_anc and anc_pres[a] < desc_pre:
                anc_id = anc_ids[a]
                while stack and not _covers(stack[-1][0], anc_id):
                    stack.pop()
                stack.append((anc_id, anc_rows[a]))
                a += 1
            while stack and not _covers(stack[-1][0], desc_id):
                stack.pop()
            desc_tuple = desc_rows[d]
            for anc_id, anc_tuple in stack:
                if _is_rel(anc_id, desc_id, axis):
                    append(concat(anc_tuple, desc_tuple))
        return Block(out, order)

    return fn


def _stack_tree_anc(op: PStackTreeAnc, left: BatchFn, right: BatchFn) -> BatchFn:
    anc_attr, desc_attr, axis = op.anc_attr, op.desc_attr, op.axis
    kind, nest_as, right_columns = op.kind, op.nest_as, op.right_columns
    order = op.output_order

    def fn(context):
        anc_block = left(context)
        desc_block = right(context)
        anc_rows = anc_block.tuples
        desc_rows = desc_block.tuples
        anc_ids = anc_block.id_column(anc_attr)
        anc_pres = anc_block.pre_column(anc_attr)
        desc_ids = desc_block.id_column(desc_attr)
        desc_pres = desc_block.pre_column(desc_attr)
        out: list = []
        # stack entries: [anc_id, anc_tuple, matches, anc_pre]
        stack: list = []
        pending: list = []  # popped ancestors not yet emitted (anc order)

        def flush_pending() -> None:
            # pop order is deepest-first; restore ancestor (pre) order
            pending.sort(key=lambda e: e[3])
            for _anc_id, anc_tuple, matches, _p in pending:
                out.extend(
                    _emit_variant(kind, anc_tuple, matches, nest_as, right_columns)
                )
            pending.clear()

        a = d = 0
        n_anc, n_desc = len(anc_rows), len(desc_rows)
        while a < n_anc or d < n_desc:
            advance_anc = d >= n_desc or (
                a < n_anc and anc_pres[a] < desc_pres[d]
            )
            if advance_anc:
                anc_id = anc_ids[a]
                while stack and not _covers(stack[-1][0], anc_id):
                    pending.append(stack.pop())
                if not stack:
                    flush_pending()
                stack.append([anc_id, anc_rows[a], [], anc_pres[a]])
                a += 1
            else:
                desc_id = desc_ids[d]
                while stack and not _covers(stack[-1][0], desc_id):
                    pending.append(stack.pop())
                if not stack:
                    flush_pending()
                desc_tuple = desc_rows[d]
                for entry in stack:
                    if _is_rel(entry[0], desc_id, axis):
                        entry[2].append(desc_tuple)
                d += 1
        while stack:
            pending.append(stack.pop())
        flush_pending()
        return Block(out, order)

    return fn


def _adapted(op: PhysicalOperator, child_fns: List[BatchFn]) -> BatchFn:
    """Run a cold operator's original iterator algorithm over
    batch-compiled children: a shallow copy of the operator gets
    :class:`PBlockInput` children, and its unmodified ``_run`` drives
    them.  Metrics for the operator itself are recorded at block level by
    the :func:`_observed` wrapper (the shadow's ``metrics`` stays None so
    nothing double-counts)."""
    shadow = copy.copy(op)
    shadow.metrics = None
    shadow.children = tuple(
        PBlockInput(fn, child) for fn, child in zip(child_fns, op.children)
    )
    if isinstance(op, PLogicalFallback):
        # the shadow keeps its own per-context substitution slot
        shadow._substituted = None
    order = op.output_order

    def fn(context):
        return Block(list(shadow._run(context)), order)

    return fn


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------

def compile_batch(physical: PhysicalOperator) -> BatchFn:
    """Compile a physical plan into one specialized closure tree:
    ``fn(context) -> Block``.

    Raises :class:`BatchUnsupported` when the plan contains an operator
    outside the covered set — callers should test :func:`batch_covered`
    first and fall back to the iterator engine.
    """

    def build(op: PhysicalOperator) -> BatchFn:
        if isinstance(op, PScan):
            raw = _scan(op)
        elif isinstance(op, PBase):
            raw = _base(op)
        elif isinstance(op, PFilter):
            raw = _filter(op, build(op.children[0]))
        elif isinstance(op, PProject):
            raw = _project(op, build(op.children[0]))
        elif isinstance(op, PSort):
            raw = _sort(op, build(op.children[0]))
        elif isinstance(op, PHashGroupBy):
            raw = _group_by(op, build(op.children[0]))
        elif isinstance(op, PHashJoin):
            raw = _hash_join(op, build(op.children[0]), build(op.children[1]))
        elif isinstance(op, PNestedLoopsJoin):
            raw = _nested_loops(
                op, build(op.children[0]), build(op.children[1])
            )
        elif isinstance(op, PStackTreeDesc):
            raw = _stack_tree_desc(
                op, build(op.children[0]), build(op.children[1])
            )
        elif isinstance(op, PStackTreeAnc):
            raw = _stack_tree_anc(
                op, build(op.children[0]), build(op.children[1])
            )
        elif isinstance(op, PBlockInput):
            raw = op.fn
        elif isinstance(op, _ADAPTED):
            raw = _adapted(op, [build(child) for child in op.children])
        else:
            raise BatchUnsupported(
                f"no batch implementation for {op.label()}"
            )
        return _observed(op, raw)

    return build(physical)
