"""Workload capture: plan fingerprints, result checksums, a query log.

PR 4 made the engine observable in the aggregate (counters, histograms,
span trees); what it cannot answer is the *regression* question a
production deployment actually asks: "did the optimizer silently change
its mind about this query, and did the answer change with it?"  The
paper's whole premise (§4) is that the optimizer picks among XAM-based
rewritings — so the plan choice is state worth recording, per query,
durably, in a form a later process can diff.

Three pieces live here:

* :func:`fingerprint_plan` — a stable hash of one prepared query's
  **physical plan shape**: per unit, the compiled operator tree (which
  bakes in the chosen join algorithms — ``PHashJoin`` vs
  ``PNestedLoopsJoin`` — and sort placements) plus, per pattern, the
  chosen access path (rewriting kind + the XAM views it reads, or the
  base store).  Two preparations that would execute differently get
  different fingerprints; re-preparing against unchanged state is
  guaranteed to reproduce the same one (compilation is deterministic
  given the catalog, summary statistics and store orders).
* :func:`result_checksum` — a stable hash of a query's observable output
  (XML fragments, scalar values, result tuples), the ground truth a
  replay diffs against.
* :class:`QueryLog` — a structured, size-rotated JSONL log recording
  every executed query: normalized text, fingerprint, checksum, latency,
  per-pattern est-vs-actual cardinalities, per-operator metrics (when the
  run was instrumented), counters, degradation flags and the trace id.
  A bounded in-memory ring of the newest records backs the ``/qlog``
  HTTP route; the file (when a path is given) is what ``repro replay``
  re-runs.  ``REPRO_QLOG=<path>`` turns capture on from the environment
  — the hook the CI chaos lane uses to keep a workload artifact around
  for failed runs.

Everything is standard library and engine-layer only: the core imports
this module, never the other way around.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import deque
from typing import Any, Iterable, Optional

__all__ = [
    "QueryLog",
    "build_record",
    "fingerprint_plan",
    "iter_ok_records",
    "result_checksum",
    "rewriting_signature",
    "QLOG_ENV_VAR",
]

#: environment variable naming the JSONL path of an ambient query log
#: (picked up by :meth:`QueryLog.from_env`, used by the CI chaos lane to
#: capture a debuggable workload artifact from test runs)
QLOG_ENV_VAR = "REPRO_QLOG"

#: fingerprints and checksums are truncated SHA-256 — 16 hex chars is
#: plenty to make collisions between a handful of plan shapes implausible
#: while keeping log lines and diffs readable
_DIGEST_CHARS = 16


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:_DIGEST_CHARS]


# ---------------------------------------------------------------------------
# Plan fingerprints
# ---------------------------------------------------------------------------

def fingerprint_plan(units, ctx, scan_orders=None) -> tuple[str, str]:
    """``(fingerprint, shape description)`` of a prepared query.

    ``units`` are the prepared units of a
    :class:`~repro.core.uload.PreparedQuery` (duck-typed: ``logical``,
    ``resolutions``, ``compiled_plan``, ``compiled_patterns``).  Units
    whose plans are not yet compiled are compiled here — and the compiled
    artifacts are stored back onto the unit, so fingerprinting at prepare
    time *prepays* the compilation that ``stats=True`` / ``physical=True``
    executions would otherwise do lazily.

    The description (second element) is the human-readable text the hash
    is computed over — ``repro replay`` and the sentinel surface it when
    explaining why two fingerprints differ.
    """
    lines: list[str] = []
    for unit_index, unit in enumerate(units):
        if unit.compiled_plan is None:
            unit.compiled_plan = ctx.compile(unit.logical, scan_orders)
        lines.append(f"unit {unit_index}: {unit.compiled_plan.shape()}")
        for index, resolution in enumerate(unit.resolutions):
            rewriting = resolution.rewriting
            if rewriting is None:
                lines.append(f"  pattern {index}: base")
                continue
            compiled = unit.compiled_patterns.get(index)
            if compiled is None:
                compiled = ctx.compile(rewriting.plan, scan_orders)
                unit.compiled_patterns[index] = compiled
            views = ",".join(rewriting.views)
            lines.append(
                f"  pattern {index}: {rewriting.kind}[{views}] "
                f"{compiled.shape()}"
            )
    shape = "\n".join(lines)
    return _digest(shape), shape


def rewriting_signature(rewriting) -> str:
    """Stable identity of one S-equivalent rewriting (duck-typed:
    ``kind``, ``views``, ``plan``).

    The digest covers the rewriting kind, the views it reads and the full
    logical plan text, so two rewritings over the same views but with
    different compensations (selections, navigations, regroupings) get
    different signatures.  Enumeration is deterministic given the catalog
    and summary, which is what lets a **pinned plan** name its chosen
    rewriting by signature and re-find it at prepare time — and what makes
    a signature from a *different* catalog state simply fail to match
    (the safe outcome: the pin falls back to normal ranking).
    """
    plan = rewriting.plan
    text = plan.pretty() if hasattr(plan, "pretty") else repr(plan)
    return _digest(f"{rewriting.kind}|{','.join(rewriting.views)}|{text}")


# ---------------------------------------------------------------------------
# Result checksums
# ---------------------------------------------------------------------------

def result_checksum(result) -> str:
    """Stable hash of a query's observable output.

    Covers the XML fragments and scalar values; raw tuples participate
    only when they *are* the output (no xml, no values) — the same rule
    the CLI uses to print a result.  Hashing the internal tuple channel
    unconditionally would double the capture cost for XML-returning
    queries (tuple reprs dominate that profile) without adding ground
    truth.  Node and tuple reprs are deterministic (kind, label,
    pre-order rank), so the same database state always reproduces the
    same checksum — which is exactly what makes it diffable across a
    record/replay pair.
    """
    hasher = hashlib.sha256()
    for xml in result.xml:
        hasher.update(b"x\x00")
        hasher.update(str(xml).encode("utf-8"))
    for value in result.values:
        hasher.update(b"v\x00")
        hasher.update(repr(value).encode("utf-8"))
    if not result.xml and not result.values:
        for t in result.tuples:
            hasher.update(b"t\x00")
            hasher.update(repr(t).encode("utf-8"))
    return hasher.hexdigest()[:_DIGEST_CHARS]


# ---------------------------------------------------------------------------
# Record construction
# ---------------------------------------------------------------------------

def build_record(
    query: str,
    result,
    seconds: float,
    outcome: str,
    error: Optional[str] = None,
    flags: Optional[dict] = None,
    admission: Optional[dict] = None,
) -> dict[str, Any]:
    """One query-log record (a JSON-able dict).

    ``result`` is None for failed / cancelled queries — the record still
    captures the query text, outcome, error type and latency, so the log
    is a complete workload trace, not just the happy path.  ``admission``
    stamps the admission-control outcome (priority class, measured queue
    wait, or the shed reason for ``outcome="rejected"`` records), so a
    log of an overloaded serve distinguishes "shed at the door" from
    "executed after queuing".
    """
    record: dict[str, Any] = {
        "ts": time.time(),
        "query": query,
        "outcome": outcome,
        "seconds": seconds,
    }
    if flags:
        record["flags"] = dict(flags)
    if admission:
        record["admission"] = dict(admission)
    if error is not None:
        record["error"] = error
    if result is None:
        return record
    record["fingerprint"] = result.plan_fingerprint
    record["checksum"] = result_checksum(result)
    executor = getattr(result, "executor", None)
    if executor is not None:
        record["executor"] = executor
    # stamp the physical layout: replaying the same workload across
    # different shard counts must diff clean (physical data independence)
    shard_count = getattr(result, "shard_count", None)
    if shard_count is not None:
        record["shards"] = shard_count
    record["rows"] = {
        "xml": len(result.xml),
        "values": len(result.values),
        "tuples": len(result.tuples),
    }
    record["patterns"] = [
        {
            "pattern": resolution.pattern.to_text(),
            "access": resolution.access_path,
            "views": (
                list(resolution.rewriting.views)
                if resolution.rewriting is not None
                else []
            ),
            "est": resolution.estimated_cardinality,
            "actual": resolution.actual_cardinality,
        }
        for resolution in result.resolutions
    ]
    operators: list[dict] = []
    # was this execution profiled?  attributed CPU/memory fields are only
    # written when so — replay and old readers tolerate their absence,
    # and calibration keys off their presence
    profiled = any(
        node.cpu_ns or node.peak_mem_bytes
        for metrics in result.metrics
        for node in metrics.walk()
    )

    def _operator_rows(node, depth: int) -> None:
        row = {
            "label": node.label,
            "depth": depth,
            "est": node.estimated_rows,
            "actual": node.rows_out,
            "ms": round(node.elapsed * 1000, 4),
        }
        if profiled:
            row["cpu_ms"] = round(node.cpu_ns / 1e6, 4)
            row["peak_mem_kb"] = round(node.peak_mem_bytes / 1024, 2)
        operators.append(row)
        for child in node.children:
            _operator_rows(child, depth + 1)

    for metrics in result.metrics:
        _operator_rows(metrics.root, 0)
    if operators:
        record["operators"] = operators
    if result.counters:
        record["counters"] = dict(result.counters)
    if getattr(result, "pinned", False):
        record["pinned"] = True
    if result.degraded:
        record["degraded"] = True
        record["events"] = list(result.degradation_events)
    if result.trace_id:
        record["trace_id"] = result.trace_id
    return record


# ---------------------------------------------------------------------------
# The query log
# ---------------------------------------------------------------------------

class QueryLog:
    """A thread-safe, size-rotated JSONL query log with a memory ring.

    ``path=None`` keeps records in memory only (the newest ``capacity``,
    for the ``/qlog`` route); with a path, every record is also appended
    as one JSON line.  When the file grows past ``max_bytes`` it rotates
    (``workload.jsonl`` → ``workload.jsonl.1`` → … up to ``max_files``
    rotated generations), so a sustained workload cannot fill the disk.

    Writes are buffered by the underlying text stream; :meth:`flush`
    forces them out and :meth:`close` is the clean-shutdown contract the
    CLI's signal handlers rely on — a SIGTERM'd ``repro serve`` must not
    lose the tail of its workload capture.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        capacity: int = 256,
        max_bytes: int = 10 * 1024 * 1024,
        max_files: int = 3,
        registry=None,
    ) -> None:
        if capacity < 1:
            raise ValueError("query log ring capacity must be >= 1")
        if max_files < 1:
            raise ValueError("query log must keep at least one rotated file")
        self.path = path
        self.max_bytes = max_bytes
        self.max_files = max_files
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._written = 0
        self._rotations = 0
        self._registry = registry
        self._file = open(path, "a", encoding="utf-8") if path else None

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_env(cls, environ=None) -> Optional["QueryLog"]:
        """A file-backed log at ``$REPRO_QLOG``, or None when unset."""
        env = os.environ if environ is None else environ
        path = env.get(QLOG_ENV_VAR)
        return cls(path) if path else None

    def bind_registry(self, registry) -> None:
        """Attach a :class:`~repro.engine.metrics.MetricsRegistry` so
        record/rotation counts surface on ``/metrics``."""
        self._registry = registry
        registry.counter("qlog.records", "query-log records written")
        registry.counter("qlog.rotations", "query-log file rotations")

    # -- recording ----------------------------------------------------------

    def record(self, record: dict) -> None:
        with self._lock:
            self._ring.append(record)
            self._written += 1
            if self._file is not None:
                if self._file.tell() > self.max_bytes:
                    self._rotate_locked()
                json.dump(record, self._file, default=str)
                self._file.write("\n")
        if self._registry is not None:
            self._registry.inc("qlog.records")

    def _rotate_locked(self) -> None:
        """Shift ``path.N`` → ``path.N+1`` (oldest dropped), current →
        ``path.1``, and reopen fresh.  Caller holds the lock."""
        self._file.close()
        oldest = f"{self.path}.{self.max_files}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for number in range(self.max_files - 1, 0, -1):
            source = f"{self.path}.{number}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{number + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._file = open(self.path, "a", encoding="utf-8")
        self._rotations += 1
        if self._registry is not None:
            self._registry.inc("qlog.rotations")

    # -- reading ------------------------------------------------------------

    def tail(self, count: Optional[int] = None) -> list[dict]:
        """The newest retained records, oldest first."""
        with self._lock:
            records = list(self._ring)
        return records if count is None else records[-count:]

    @staticmethod
    def read(path: str) -> list[dict]:
        """Parse a JSONL log file back into records (blank lines are
        skipped; a torn final line — a crashed writer — is tolerated)."""
        records: list[dict] = []
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        for number, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if number == len(lines) - 1:
                    continue  # torn tail from an unclean shutdown
                raise
        return records

    @staticmethod
    def read_all(path: str, max_files: int = 3) -> list[dict]:
        """Like :meth:`read`, but including rotated generations (oldest
        first), so a rotated capture replays in recording order."""
        records: list[dict] = []
        for number in range(max_files, 0, -1):
            rotated = f"{path}.{number}"
            if os.path.exists(rotated):
                records.extend(QueryLog.read(rotated))
        records.extend(QueryLog.read(path))
        return records

    # -- introspection -------------------------------------------------------

    @property
    def written(self) -> int:
        with self._lock:
            return self._written

    @property
    def rotations(self) -> int:
        with self._lock:
            return self._rotations

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def render(self, count: int = 20) -> str:
        records = self.tail(count)
        if not records:
            return "no queries logged"
        lines = []
        for record in records:
            fingerprint = record.get("fingerprint", "-")
            marker = " DEGRADED" if record.get("degraded") else ""
            lines.append(
                f"{record.get('seconds', 0.0) * 1000:8.2f}ms "
                f"[{record.get('outcome', '?')}] plan={fingerprint}{marker} "
                f"{record.get('query', '')}"
            )
        return "\n".join(lines)

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()

    def close(self) -> None:
        """Flush and close the backing file (idempotent); the memory ring
        stays readable."""
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None

    @property
    def closed(self) -> bool:
        with self._lock:
            return self.path is not None and self._file is None

    def __enter__(self) -> "QueryLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = self.path or "memory"
        return f"<QueryLog {target} written={self.written}>"


def iter_ok_records(records: Iterable[dict]) -> Iterable[dict]:
    """The replayable subset of a log: successful executions that carry a
    fingerprint and checksum."""
    for record in records:
        if record.get("outcome") == "ok" and "checksum" in record:
            yield record
