"""Physical operators and the logical→physical compiler (thesis §1.2.3).

Physical operators follow the iterator model (Python generators).  The
library mirrors the thesis engine:

* ``Scan``/``Filter``/``Project``/``Union`` — straightforward streaming;
* ``Sort`` — backed by the B+ tree of :mod:`repro.engine.btree`;
* ``HashGroupBy`` — memory-resident hash table;
* value joins — nested loops and hash join;
* structural joins — the **StackTreeDesc** and **StackTreeAnc** algorithms
  of Al-Khalifa et al., requiring both inputs sorted by structural ID;
  ``StackTreeDesc`` emits in descendant order, ``StackTreeAnc`` in
  ancestor order.  Outer/semi/nest variants derive from the
  ancestor-grouped formulation, as the thesis implements them.

:func:`compile_plan` lowers a logical plan to a physical one, consulting
order descriptors (:mod:`repro.engine.orderdesc`) and inserting ``Sort``
operators so that structural joins are correctly piped — the exact
bookkeeping §1.2.3 motivates.  Operators whose logical semantics is
inherently nested (map-extended joins, template construction) fall back to
a materializing wrapper around the logical operator, keeping the compiler
total.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Callable, Iterator, Mapping, Optional, Sequence

from ..algebra.model import NULL, NestedTuple, concat
from ..algebra.operators import (
    BaseTuples,
    Difference,
    GroupBy,
    Operator,
    Product,
    Project,
    Scan,
    Select,
    StructuralJoin,
    Union,
    ValueJoin,
)
from ..algebra.predicates import Attr, Compare
from ..xmldata.ids import DeweyID, StructuralID
from .btree import BPlusTree
from .context import EXEC_CTX_KEY, ExecutionContext, OperatorMetrics
from .orderdesc import project_order, satisfies, sort_key_for

__all__ = [
    "PhysicalOperator",
    "PScan",
    "PBase",
    "PFilter",
    "PProject",
    "PConcat",
    "PDifference",
    "PNestedLoopsJoin",
    "PHashJoin",
    "PSort",
    "PHashGroupBy",
    "PStackTreeDesc",
    "PStackTreeAnc",
    "PLogicalFallback",
    "compile_plan",
    "execute",
]

Context = Mapping[str, Sequence[NestedTuple]]


class PhysicalOperator:
    """Base class: generators in, generator out, plus an order descriptor.

    Subclasses implement :meth:`_run`; the public :meth:`execute` wraps it
    and — when :meth:`ExecutionContext.instrument` attached a metrics node
    — records tuples-out and inclusive wall time into it.  ``estimated_rows``
    is stamped by the compiler from the logical plan's cardinality walk, so
    EXPLAIN can print estimates and actuals side by side.
    """

    children: tuple["PhysicalOperator", ...] = ()
    output_order: Optional[str] = None
    #: compiler-estimated output cardinality (None = unknown)
    estimated_rows: Optional[float] = None
    #: runtime metrics node attached by ExecutionContext.instrument
    metrics: Optional[OperatorMetrics] = None
    #: attributed-profiling flag, stamped by ExecutionContext.instrument
    #: alongside ``metrics``; only consulted when a metrics node exists,
    #: so the unobserved fast path stays a single ``is None`` check
    profiled: bool = False

    def _run(self, context: Optional[Context] = None) -> Iterator[NestedTuple]:
        raise NotImplementedError

    def execute(self, context: Optional[Context] = None) -> Iterator[NestedTuple]:
        if self.metrics is None:
            return self._run(context)
        if self.profiled:
            return self._record_profiled(context)
        return self._record(context)

    def _record(self, context: Optional[Context]) -> Iterator[NestedTuple]:
        m = self.metrics
        m.executions += 1
        clock = time.perf_counter
        source = self._run(context)
        while True:
            started = clock()
            try:
                t = next(source)
            except StopIteration:
                m.elapsed += clock() - started
                return
            m.elapsed += clock() - started
            m.rows_out += 1
            yield t

    #: profiled-mode memory sampling cadence: traced-allocation reads are
    #: ~10x a clock read, so sample every N tuples rather than every tuple
    _MEM_SAMPLE_EVERY = 64

    def _record_profiled(self, context: Optional[Context]) -> Iterator[NestedTuple]:
        """The :meth:`_record` loop plus per-tuple thread-CPU attribution
        and a periodically sampled traced-memory high-water mark.

        CPU accumulates inclusively (children's profiled loops also
        record), mirroring ``elapsed``; ``peak_mem_bytes`` is the largest
        traced-allocation delta vs the open snapshot observed at any
        sampling point between operator open and close."""
        m = self.metrics
        m.executions += 1
        clock = time.perf_counter
        cpu_clock = time.thread_time_ns
        traced = tracemalloc.get_traced_memory
        mem_base = traced()[0]
        peak = 0
        countdown = self._MEM_SAMPLE_EVERY
        source = self._run(context)
        while True:
            started = clock()
            cpu_started = cpu_clock()
            try:
                t = next(source)
            except StopIteration:
                m.cpu_ns += cpu_clock() - cpu_started
                m.elapsed += clock() - started
                peak = max(peak, traced()[0] - mem_base)
                if peak > m.peak_mem_bytes:
                    m.peak_mem_bytes = peak
                return
            m.cpu_ns += cpu_clock() - cpu_started
            m.elapsed += clock() - started
            m.rows_out += 1
            countdown -= 1
            if countdown <= 0:
                countdown = self._MEM_SAMPLE_EVERY
                peak = max(peak, traced()[0] - mem_base)
            yield t

    def label(self) -> str:
        return type(self).__name__

    def shape(self) -> str:
        """Stable one-line structural signature of the plan subtree:
        operator labels (which carry the chosen algorithm — hash vs
        nested loops, StackTree variant, sort placement — and scanned
        relation names) over the child structure.  Plan fingerprints
        (:mod:`repro.engine.qlog`) hash this, so equal shapes mean "the
        engine would execute the same plan"."""
        if not self.children:
            return self.label()
        inner = ",".join(child.shape() for child in self.children)
        return f"{self.label()}({inner})"

    def walk(self) -> Iterator["PhysicalOperator"]:
        """Pre-order traversal (uniform with ``Operator.walk``)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def operator_count(self) -> int:
        return 1 + sum(child.operator_count() for child in self.children)

    def __repr__(self) -> str:
        return self.pretty()


class PScan(PhysicalOperator):
    """Read a named base relation from the execution context, advertising
    the order the store maintains it in (``scan_orders``)."""

    def __init__(self, name: str, order: Optional[str] = None, missing_ok: bool = False):
        self.name = name
        self.output_order = order
        self.missing_ok = missing_ok

    def _run(self, context: Optional[Context] = None) -> Iterator[NestedTuple]:
        if context is None or self.name not in context:
            if self.missing_ok:
                return
            raise KeyError(f"base relation {self.name!r} missing from context")
        yield from context[self.name]

    def label(self) -> str:
        return f"PScan({self.name})"


class PBase(PhysicalOperator):
    """A literal tuple source (index-lookup results, test fixtures)."""

    def __init__(self, tuples: Sequence[NestedTuple], order: Optional[str] = None):
        self.tuples = list(tuples)
        self.output_order = order

    def _run(self, context: Optional[Context] = None) -> Iterator[NestedTuple]:
        yield from self.tuples


class PFilter(PhysicalOperator):
    """Pipelined selection; preserves the child's order descriptor."""

    def __init__(self, child: PhysicalOperator, predicate: Callable[[NestedTuple], bool]):
        self.children = (child,)
        self.predicate = predicate
        self.output_order = child.output_order

    def _run(self, context: Optional[Context] = None) -> Iterator[NestedTuple]:
        for t in self.children[0].execute(context):
            if self.predicate(t):
                yield t


class PProject(PhysicalOperator):
    def __init__(
        self,
        child: PhysicalOperator,
        columns: Sequence[str],
        dedup: bool = False,
        renames: Optional[Mapping[str, str]] = None,
    ):
        self.children = (child,)
        self.columns = list(columns)
        self.dedup = dedup
        self.renames = dict(renames) if renames else {}
        # projection streams in input order: the descriptor survives when
        # its attribute does (dedup keeps first occurrences, also in order)
        self.output_order = project_order(child.output_order, self.columns, self.renames)

    def _run(self, context: Optional[Context] = None) -> Iterator[NestedTuple]:
        seen: set[tuple] = set()
        for t in self.children[0].execute(context):
            projected = t.project(self.columns)
            if self.renames:
                projected = projected.rename(self.renames)
            if self.dedup:
                key = projected.freeze()
                if key in seen:
                    continue
                seen.add(key)
            yield projected


class PConcat(PhysicalOperator):
    """Bag union of its inputs, in argument order (ordered only in the
    degenerate single-input case)."""

    def __init__(self, *parts: PhysicalOperator):
        self.children = tuple(parts)
        if len(parts) == 1:
            self.output_order = parts[0].output_order

    def _run(self, context: Optional[Context] = None) -> Iterator[NestedTuple]:
        for child in self.children:
            yield from child.execute(context)


class PDifference(PhysicalOperator):
    """Bag difference: left tuples minus right multiplicities (blocks on
    the right input to build the count table)."""

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator):
        self.children = (left, right)

    def _run(self, context: Optional[Context] = None) -> Iterator[NestedTuple]:
        counts: dict[tuple, int] = {}
        for t in self.children[1].execute(context):
            key = t.freeze()
            counts[key] = counts.get(key, 0) + 1
        for t in self.children[0].execute(context):
            key = t.freeze()
            remaining = counts.get(key, 0)
            if remaining:
                counts[key] = remaining - 1
            else:
                yield t


class PSort(PhysicalOperator):
    """Sort through a B+ tree, as the thesis' Sort_φ operator does."""

    def __init__(self, child: PhysicalOperator, path: str):
        self.children = (child,)
        self.path = path
        self.output_order = path

    def _run(self, context: Optional[Context] = None) -> Iterator[NestedTuple]:
        tree = BPlusTree()
        key = sort_key_for(self.path)
        for t in self.children[0].execute(context):
            tree.insert((key(t),), t)
        yield from tree.values_in_order()

    def label(self) -> str:
        return f"PSort[{self.path}]"


class PHashGroupBy(PhysicalOperator):
    """Hash grouping: one output tuple per key combination with the group's
    members nested under ``nest_as``; groups emit in first-seen order."""

    def __init__(self, child: PhysicalOperator, keys: Sequence[str], nest_as: str):
        self.children = (child,)
        self.keys = list(keys)
        self.nest_as = nest_as
        # groups emit in first-seen order, so a child ordered by a grouping
        # key yields groups in that key's order
        if child.output_order in self.keys:
            self.output_order = child.output_order

    def _run(self, context: Optional[Context] = None) -> Iterator[NestedTuple]:
        groups: dict[tuple, list[NestedTuple]] = {}
        heads: dict[tuple, NestedTuple] = {}
        order: list[tuple] = []
        for t in self.children[0].execute(context):
            head = t.project(self.keys)
            key = head.freeze()
            if key not in groups:
                groups[key] = []
                heads[key] = head
                order.append(key)
            groups[key].append(t.drop(self.keys))
        for key in order:
            yield heads[key].with_attrs(**{self.nest_as: groups[key]})


def _emit_variant(
    kind: str,
    anc: NestedTuple,
    matches: list[NestedTuple],
    nest_as: str,
    right_columns: Sequence[str],
) -> Iterator[NestedTuple]:
    if kind == "j":
        for m in matches:
            yield concat(anc, m)
    elif kind == "o":
        if matches:
            for m in matches:
                yield concat(anc, m)
        else:
            yield concat(anc, NestedTuple({c: NULL for c in right_columns}))
    elif kind == "s":
        if matches:
            yield anc
    elif kind == "nj":
        if matches:
            yield anc.with_attrs(**{nest_as: matches})
    elif kind == "no":
        yield anc.with_attrs(**{nest_as: matches})
    else:  # pragma: no cover - guarded by constructors
        raise AssertionError(kind)


def _sid(t: NestedTuple, attr: str):
    value = t.get(attr)
    if value is None:
        return None
    if not isinstance(value, (StructuralID, DeweyID)):
        raise TypeError(
            f"structural join attribute {attr!r} holds {type(value).__name__}, "
            "which is not a structural identifier"
        )
    if isinstance(value, DeweyID):
        # StackTree needs interval tests; Dewey prefixes give them directly.
        return value
    return value


def _pre(identifier) -> tuple:
    if isinstance(identifier, StructuralID):
        return (identifier.pre,)
    return identifier.path  # DeweyID: document order = path order


def _is_rel(anc_id, desc_id, axis: str) -> bool:
    if axis == "child":
        return anc_id.is_parent_of(desc_id)
    return anc_id.is_ancestor_of(desc_id)


def _covers(anc_id, desc_id) -> bool:
    """Whether desc is inside anc's interval (ancestor-descendant test,
    used for stack maintenance regardless of the join axis)."""
    return anc_id.is_ancestor_of(desc_id)


class PStackTreeDesc(PhysicalOperator):
    """Stack-based structural join emitting in **descendant** order.

    Requires both inputs sorted by their structural-ID attribute in
    document (pre) order.  Only the plain-join variant is meaningful in
    descendant order (per-ancestor variants group naturally in ancestor
    order — see :class:`PStackTreeAnc`).
    """

    def __init__(
        self,
        ancestors: PhysicalOperator,
        descendants: PhysicalOperator,
        anc_attr: str,
        desc_attr: str,
        axis: str = "descendant",
    ):
        self.children = (ancestors, descendants)
        self.anc_attr = anc_attr
        self.desc_attr = desc_attr
        self.axis = axis
        self.output_order = desc_attr

    def _run(self, context: Optional[Context] = None) -> Iterator[NestedTuple]:
        anc_stream = iter(self.children[0].execute(context))
        desc_stream = iter(self.children[1].execute(context))
        stack: list[tuple] = []  # (anc_id, anc_tuple)
        anc = next(anc_stream, None)
        desc = next(desc_stream, None)
        while desc is not None:
            desc_id = _sid(desc, self.desc_attr)
            # Push every ancestor starting before this descendant.
            while anc is not None:
                anc_id = _sid(anc, self.anc_attr)
                if _pre(anc_id) < _pre(desc_id):
                    while stack and not _covers(stack[-1][0], anc_id):
                        stack.pop()
                    stack.append((anc_id, anc))
                    anc = next(anc_stream, None)
                else:
                    break
            while stack and not _covers(stack[-1][0], desc_id):
                stack.pop()
            for anc_id, anc_tuple in stack:
                if _is_rel(anc_id, desc_id, self.axis):
                    yield concat(anc_tuple, desc)
            desc = next(desc_stream, None)

    def label(self) -> str:
        return f"PStackTreeDesc[{self.anc_attr} {self.axis} {self.desc_attr}]"


class PStackTreeAnc(PhysicalOperator):
    """Stack-based structural join emitting in **ancestor** order, with the
    join/semi/outer/nest/nest-outer variants (the thesis implements outer
    and semi joins "as variations of the StackTree algorithms").

    Output lists per popped ancestor are produced via inherit lists, the
    standard StackTreeAnc bookkeeping.
    """

    def __init__(
        self,
        ancestors: PhysicalOperator,
        descendants: PhysicalOperator,
        anc_attr: str,
        desc_attr: str,
        axis: str = "descendant",
        kind: str = "j",
        nest_as: str = "s",
        right_columns: Sequence[str] = (),
    ):
        self.children = (ancestors, descendants)
        self.anc_attr = anc_attr
        self.desc_attr = desc_attr
        self.axis = axis
        self.kind = kind
        self.nest_as = nest_as
        self.right_columns = list(right_columns)
        self.output_order = anc_attr

    def _run(self, context: Optional[Context] = None) -> Iterator[NestedTuple]:
        anc_stream = iter(self.children[0].execute(context))
        desc_stream = iter(self.children[1].execute(context))
        # stack entries: [anc_id, anc_tuple, matches]
        stack: list[list] = []
        pending: list = []  # popped ancestors not yet emitted (anc order)

        def pop_entry():
            entry = stack.pop()
            pending.append(entry)

        def flush_pending() -> Iterator[NestedTuple]:
            # Ancestors can be emitted once no live stack entry precedes
            # them; entries are collected in pop order (deepest first), so
            # sort by pre to restore ancestor order.
            pending.sort(key=lambda e: _pre(e[0]))
            for anc_id, anc_tuple, matches in pending:
                yield from _emit_variant(
                    self.kind, anc_tuple, matches, self.nest_as, self.right_columns
                )
            pending.clear()

        anc = next(anc_stream, None)
        desc = next(desc_stream, None)
        while anc is not None or desc is not None:
            if anc is not None:
                anc_id = _sid(anc, self.anc_attr)
            if desc is not None:
                desc_id = _sid(desc, self.desc_attr)
            advance_anc = desc is None or (
                anc is not None and _pre(anc_id) < _pre(desc_id)
            )
            if advance_anc:
                while stack and not _covers(stack[-1][0], anc_id):
                    pop_entry()
                if not stack:
                    yield from flush_pending()
                stack.append([anc_id, anc, []])
                anc = next(anc_stream, None)
            else:
                while stack and not _covers(stack[-1][0], desc_id):
                    pop_entry()
                if not stack:
                    yield from flush_pending()
                for entry in stack:
                    if _is_rel(entry[0], desc_id, self.axis):
                        entry[2].append(desc)
                desc = next(desc_stream, None)
        while stack:
            pop_entry()
        yield from flush_pending()

    def label(self) -> str:
        return (
            f"PStackTreeAnc[{self.anc_attr} {self.axis} {self.desc_attr}, "
            f"{self.kind}]"
        )


class PNestedLoopsJoin(PhysicalOperator):
    """Fallback join for arbitrary match functions; supports the same
    j/o/s/nj/no semantics as the logical joins.  Blocks on the right
    input."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        match: Callable[[NestedTuple, NestedTuple], bool],
        kind: str = "j",
        nest_as: str = "s",
        right_columns: Sequence[str] = (),
        description: str = "pred",
    ):
        self.children = (left, right)
        self.match = match
        self.kind = kind
        self.nest_as = nest_as
        self.right_columns = list(right_columns)
        self.description = description
        self.output_order = left.output_order if kind in ("s", "nj", "no") else None

    def _run(self, context: Optional[Context] = None) -> Iterator[NestedTuple]:
        right = list(self.children[1].execute(context))
        for left_tuple in self.children[0].execute(context):
            matches = [r for r in right if self.match(left_tuple, r)]
            yield from _emit_variant(
                self.kind, left_tuple, matches, self.nest_as, self.right_columns
            )

    def label(self) -> str:
        return f"PNestedLoopsJoin[{self.description}, {self.kind}]"


class PHashJoin(PhysicalOperator):
    """Equality join backed by a memory-resident hash table on the right
    input."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_attr: str,
        right_attr: str,
        kind: str = "j",
        nest_as: str = "s",
        right_columns: Sequence[str] = (),
    ):
        self.children = (left, right)
        self.left_attr = left_attr
        self.right_attr = right_attr
        self.kind = kind
        self.nest_as = nest_as
        self.right_columns = list(right_columns)
        self.output_order = left.output_order if kind in ("s", "nj", "no") else None

    def _run(self, context: Optional[Context] = None) -> Iterator[NestedTuple]:
        table: dict = {}
        for r in self.children[1].execute(context):
            key = r.first(self.right_attr)
            if key is not None:
                table.setdefault(key, []).append(r)
        for left_tuple in self.children[0].execute(context):
            key = left_tuple.first(self.left_attr)
            matches = table.get(key, []) if key is not None else []
            yield from _emit_variant(
                self.kind, left_tuple, matches, self.nest_as, self.right_columns
            )

    def label(self) -> str:
        return f"PHashJoin[{self.left_attr} = {self.right_attr}, {self.kind}]"


class PLogicalFallback(PhysicalOperator):
    """Materializing wrapper for logical operators without a streaming
    counterpart (map-extended joins, templates, navigation…): physical
    children are materialized, substituted as base inputs, and the logical
    operator evaluates over them.

    Each physical input is materialized **exactly once per execution
    context** — one materialized block set per context, not an unbounded
    accumulation: re-executing the same compiled plan against the same
    context reuses the substituted inputs, and a new context *replaces*
    the slot instead of growing it.  Every (re)build reports its size
    through the ``fallback.materialized_rows`` counter of the execution
    context published under :data:`~repro.engine.context.EXEC_CTX_KEY`,
    so the buffering is observable rather than silent."""

    def __init__(self, logical: Operator, children: Sequence[PhysicalOperator]):
        self.logical = logical
        self.children = tuple(children)
        # (context object, substituted clone) — the context is kept alive
        # so identity comparison stays sound
        self._substituted: Optional[tuple[Optional[Context], Operator]] = None

    def _substitute(self, context: Optional[Context]) -> Operator:
        import copy

        if self._substituted is None or self._substituted[0] is not context:
            materialized = [
                list(child.execute(context)) for child in self.children
            ]
            clone = copy.copy(self.logical)
            clone.children = tuple(
                BaseTuples(rows, self.logical.children[index].schema())
                for index, rows in enumerate(materialized)
            )
            self._substituted = (context, clone)
            if context is not None:
                sink = context.get(EXEC_CTX_KEY)
                if sink is not None:
                    sink.bump(
                        "fallback.materialized_rows",
                        float(sum(len(rows) for rows in materialized)),
                    )
        return self._substituted[1]

    def _run(self, context: Optional[Context] = None) -> Iterator[NestedTuple]:
        yield from self._substitute(context).evaluate(context)

    def label(self) -> str:
        return f"PLogicalFallback[{self.logical.label()}]"


# ---------------------------------------------------------------------------
# Logical → physical compilation
# ---------------------------------------------------------------------------

def compile_plan(
    logical: Operator,
    scan_orders: Optional[Mapping[str, str]] = None,
    context: Optional[ExecutionContext] = None,
) -> PhysicalOperator:
    """Lower a logical plan, picking StackTree algorithms for flat
    structural joins (inserting B+-tree Sorts only when order descriptors
    do not line up), cost-chosen hash/nested-loops joins for equality
    predicates, and the materializing fallback elsewhere.

    ``scan_orders`` declares the physical order of base relations (e.g.
    path-partitioned stores keep IDs in document order), letting the
    compiler skip redundant sorts.  ``context`` supplies statistics, the
    cost model, and lowering-rule overrides (its registry is consulted
    before the built-in rules); without one, a default context with empty
    statistics is used and unknown inputs are assumed large, preserving
    the scalable algorithm choices.  Every lowered operator is stamped
    with the logical estimate (``estimated_rows``) for EXPLAIN.
    """
    scan_orders = dict(scan_orders or {})
    ctx = context or ExecutionContext()

    def lower(op: Operator) -> PhysicalOperator:
        phys = lower_raw(op)
        if phys.estimated_rows is None:
            phys.estimated_rows = ctx.estimate(op)
        return phys

    def lower_raw(op: Operator) -> PhysicalOperator:
        registered = ctx.registry.get(type(op))
        if registered is not None:
            return registered(op, lower, ctx)
        if isinstance(op, Scan):
            return PScan(op.name, order=scan_orders.get(op.name), missing_ok=op.missing_ok)
        if isinstance(op, BaseTuples):
            return PBase(op.tuples)
        if isinstance(op, Select) and op.reduce_path is None:
            predicate = op.predicate
            return PFilter(lower(op.children[0]), lambda t: predicate.holds(t))
        if isinstance(op, Project):
            return PProject(
                lower(op.children[0]), op.columns, op.dedup, op.renames
            )
        if isinstance(op, Union):
            return PConcat(*(lower(c) for c in op.children))
        if isinstance(op, Difference):
            return PDifference(lower(op.children[0]), lower(op.children[1]))
        if isinstance(op, Product):
            return PNestedLoopsJoin(
                lower(op.children[0]),
                lower(op.children[1]),
                lambda a, b: True,
                kind="j",
                right_columns=op.children[1].schema(),
                description="×",
            )
        if isinstance(op, GroupBy):
            return PHashGroupBy(lower(op.children[0]), op.keys, op.nest_as)
        if isinstance(op, ValueJoin):
            return _lower_value_join(op, lower, ctx)
        if isinstance(op, StructuralJoin) and "/" not in op.left_attr:
            return _lower_structural_join(op, lower)
        # everything else: materializing fallback over lowered children
        return PLogicalFallback(op, [lower(c) for c in op.children])

    return lower(logical)


def _lower_value_join(op: ValueJoin, lower, ctx: ExecutionContext) -> PhysicalOperator:
    right_columns = op.children[1].schema()
    predicate = op.predicate
    if (
        isinstance(predicate, Compare)
        and predicate.op == "="
        and isinstance(predicate.left, Attr)
        and isinstance(predicate.right, Attr)
        and predicate.left.side != predicate.right.side
    ):
        choice = ctx.cost_model.choose_join(
            ctx.estimate(op.children[0]), ctx.estimate(op.children[1])
        )
        # the cost-based decision is exactly the evidence the metrics
        # layer exists to surface: count which algorithm won
        ctx.bump(f"compile.join.{choice}")
        if choice == "hash":
            left_attr = predicate.left if predicate.left.side == 0 else predicate.right
            right_attr = predicate.right if predicate.right.side == 1 else predicate.left
            return PHashJoin(
                lower(op.children[0]),
                lower(op.children[1]),
                left_attr.path,
                right_attr.path,
                kind=op.kind,
                nest_as=op.nest_as,
                right_columns=right_columns,
            )
    return PNestedLoopsJoin(
        lower(op.children[0]),
        lower(op.children[1]),
        lambda a, b: predicate.holds(a, b),
        kind=op.kind,
        nest_as=op.nest_as,
        right_columns=right_columns,
        description=repr(predicate),
    )


def _sorted_on(child: PhysicalOperator, attr: str) -> PhysicalOperator:
    if satisfies(child.output_order, attr):
        return child
    sort = PSort(child, attr)
    sort.estimated_rows = child.estimated_rows  # sorting is cardinality-neutral
    return sort


def _lower_structural_join(op: StructuralJoin, lower) -> PhysicalOperator:
    left = _sorted_on(lower(op.children[0]), op.left_attr)
    right = _sorted_on(lower(op.children[1]), op.right_attr)
    if op.kind == "j":
        return PStackTreeDesc(left, right, op.left_attr, op.right_attr, op.axis)
    return PStackTreeAnc(
        left,
        right,
        op.left_attr,
        op.right_attr,
        op.axis,
        kind=op.kind,
        nest_as=op.nest_as,
        right_columns=op.children[1].schema(),
    )


def execute(
    logical: Operator,
    context: Optional[Context] = None,
    scan_orders: Optional[Mapping[str, str]] = None,
    execution_context: Optional[ExecutionContext] = None,
) -> Iterator[NestedTuple]:
    """Compile and run a logical plan through the physical engine.

    Returns a **lazy iterator**: tuples are produced as the root operator
    pulls them, so callers that stop early (LIMIT-style consumption,
    existence checks) never pay for the full result.  Wrap in ``list()``
    to materialize; blocking operators (sorts, hash builds, fallbacks)
    still materialize their own inputs internally as their algorithms
    require.
    """
    physical = compile_plan(logical, scan_orders, context=execution_context)
    return physical.execute(context)
