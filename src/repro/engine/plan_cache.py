"""A versioned, thread-safe LRU cache of prepared query plans.

The thesis' economics (§1.2.3–§1.2.4) are that many logical queries share
a few physical access paths; what makes that *pay* at runtime is not
re-deriving the access-path choice on every call.  The full pipeline —
parse → translate → extract maximal patterns → rewriting search over the
XAM catalog → rank → assemble → compile — is pure with respect to the
database state, so its output can be reused until that state changes.

:class:`PlanCache` keys entries on ``(normalized query text, flags)`` and
stamps each entry with the **catalog version** current when the plan was
prepared.  Any XAM / document / statistics mutation bumps the version
(see :attr:`repro.storage.catalog.Catalog.version` and
``Database.catalog_version``), so a later lookup finds a version mismatch
and drops the stale plan automatically — the cache never needs to know
*what* changed, only *that* something did.  This is the invalidation
protocol: versions only grow, entries carry the version they were built
against, and equality is the sole staleness test.

All operations take a single internal lock; the cache is safe to share
across the :class:`~repro.core.service.QueryService` worker threads.
Counters (hits / misses / evictions / invalidations) are maintained under
the same lock and exposed as an immutable :class:`CacheStats` snapshot.
"""

from __future__ import annotations

import json
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Hashable, Iterator, Optional

__all__ = [
    "CacheStats",
    "CompiledPlanArtifact",
    "CompiledSlot",
    "PinStats",
    "PinnedChoice",
    "PinnedPlan",
    "PlanCache",
    "PlanPinStore",
    "normalize_query",
]


def normalize_query(text: str) -> str:
    """Whitespace-insensitive form of a query: the cache key treats
    ``//a/b`` and ``  //a/b  `` (and internal run-of-space differences)
    as the same query."""
    return " ".join(text.split())


@dataclass(frozen=True)
class CacheStats:
    """An immutable snapshot of the cache counters.

    ``invalidations`` counts entries dropped because the catalog version
    moved past them (on lookup or an explicit stale purge); ``evictions``
    counts capacity-driven LRU drops only.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }

    def render(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} invalidations={self.invalidations} "
            f"size={self.size}/{self.capacity} hit_rate={self.hit_rate:.0%}"
        )


class _Entry:
    __slots__ = ("value", "version")

    def __init__(self, value: Any, version: int):
        self.value = value
        self.version = version


class CompiledSlot:
    """One compiled batch closure of a plan artifact.

    ``plan`` is the physical operator tree the closure records metrics
    into (instrumentation attaches nodes to *this* tree, not whatever
    copy a later preparation produced); ``fn`` is the specialized
    closure; ``lock`` serializes executions — one artifact may be shared
    by every prepared query carrying the same fingerprint, and metrics
    instrumentation is per-plan-object state.
    """

    __slots__ = ("name", "plan", "fn", "lock")

    def __init__(self, name: str, plan: Any, fn: Any):
        self.name = name
        self.plan = plan
        self.fn = fn
        self.lock = threading.Lock()


class CompiledPlanArtifact:
    """The compiled-executor artifact cached under one plan fingerprint.

    A prepared query compiles to several physical plans — one per
    extraction unit (``unit:<n>``) plus one per chosen rewriting
    (``pattern:<unit>:<index>``); the artifact holds one
    :class:`CompiledSlot` per such plan, filled lazily as execution
    reaches it.  PR 5's fingerprint is the key: identical catalog state
    re-prepares to an identical fingerprint, so the closures are exactly
    reusable; any catalog-version bump makes the enclosing cache entry
    stale and the whole artifact is recompiled.
    """

    __slots__ = ("fingerprint", "version", "_slots", "_lock")

    def __init__(self, fingerprint: str, version: int = 0):
        self.fingerprint = fingerprint
        self.version = version
        self._slots: dict[str, CompiledSlot] = {}
        self._lock = threading.Lock()

    def slot(
        self, name: str, plan: Any, compiler: Any
    ) -> tuple[CompiledSlot, bool]:
        """The compiled slot for ``name``, compiling ``plan`` through
        ``compiler`` on first request.  Returns ``(slot, fresh)`` —
        ``fresh`` is True when this call did the compilation (a
        ``plan_compile.miss``), False on reuse (a ``plan_compile.hit``).
        """
        with self._lock:
            found = self._slots.get(name)
            if found is not None:
                return found, False
            compiled = CompiledSlot(name, plan, compiler(plan))
            self._slots[name] = compiled
            return compiled, True

    def slots(self) -> list[str]:
        with self._lock:
            return list(self._slots)

    def __len__(self) -> int:
        with self._lock:
            return len(self._slots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompiledPlanArtifact {self.fingerprint} "
            f"slots={len(self)} v{self.version}>"
        )


class PlanCache:
    """LRU map from query keys to prepared plans, with version stamps."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # -- lookups ------------------------------------------------------------

    def get(self, key: Hashable, version: int = 0) -> Optional[Any]:
        """The cached value, or None.  A key present at an older catalog
        version counts as an invalidation *and* a miss, and the stale
        entry is dropped."""
        return self.lookup(key, version)[0]

    def lookup(self, key: Hashable, version: int = 0) -> tuple[Optional[Any], str]:
        """Like :meth:`get`, but also reports the per-lookup outcome:
        ``"hit"``, ``"miss"``, or ``"stale"`` (version mismatch — counted
        as an invalidation and a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None, "miss"
            if entry.version != version:
                del self._entries[key]
                self._invalidations += 1
                self._misses += 1
                return None, "stale"
            self._entries.move_to_end(key)
            self._hits += 1
            return entry.value, "hit"

    def put(self, key: Hashable, value: Any, version: int = 0) -> None:
        with self._lock:
            self._entries[key] = _Entry(value, version)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    # -- invalidation -------------------------------------------------------

    def remove(self, key: Hashable) -> bool:
        """Drop one entry by key (counted as an invalidation when
        present).  The query service uses this after a degraded execution:
        the cached plan's top-ranked rewriting just failed, so the next
        preparation should re-rank with the circuit breakers in view."""
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self._invalidations += 1
            return True

    def purge_stale(self, version: int) -> int:
        """Drop every entry not built at ``version`` (the eager half of
        the protocol — lazy lookup-time drops happen regardless).
        Returns the number of entries dropped."""
        with self._lock:
            stale = [k for k, e in self._entries.items() if e.version != version]
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
            return len(stale)

    def clear(self) -> int:
        """Drop everything (counted as invalidations)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._invalidations += dropped
            return dropped

    # -- introspection ------------------------------------------------------

    def register_metrics(self, registry, prefix: str = "plan_cache") -> None:
        """Publish this cache into a
        :class:`~repro.engine.metrics.MetricsRegistry`: a scrape-time
        collector mirrors the lifetime counters (hits / misses /
        evictions / invalidations are maintained under the cache lock
        anyway — no reason to double-count them on the hot path) and
        refreshes the size / capacity gauges.  ``prefix`` names the
        metric family, so several caches (the prepared-plan cache, the
        compiled-artifact cache) coexist on one registry."""
        registry.counter(f"{prefix}.hits", f"{prefix} hits (lifetime)")
        registry.counter(f"{prefix}.misses", f"{prefix} misses (lifetime)")
        registry.counter(f"{prefix}.evictions", "capacity-driven LRU drops")
        registry.counter(
            f"{prefix}.invalidations", "version/staleness-driven drops"
        )
        registry.gauge(f"{prefix}.size", "cached plans right now")
        registry.gauge(f"{prefix}.capacity", f"{prefix} capacity")

        self_ref = weakref.ref(self)

        def collect(reg) -> None:
            cache = self_ref()
            if cache is None:  # don't pin dead caches to the registry
                reg.unregister_collector(collect)
                return
            stats = cache.stats()
            reg.counter(f"{prefix}.hits").set_total(stats.hits)
            reg.counter(f"{prefix}.misses").set_total(stats.misses)
            reg.counter(f"{prefix}.evictions").set_total(stats.evictions)
            reg.counter(f"{prefix}.invalidations").set_total(stats.invalidations)
            reg.set_gauge(f"{prefix}.size", stats.size)
            reg.set_gauge(f"{prefix}.capacity", stats.capacity)

        registry.register_collector(collect)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def keys(self) -> list[Hashable]:
        """Current keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PlanCache {self.stats().render()}>"


# ---------------------------------------------------------------------------
# Pinned plans — the tournament's promotion layer
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PinnedChoice:
    """One pinned access-path decision: pattern ``pattern`` of unit
    ``unit`` is served by the base store (``access="base"``) or by the
    rewriting whose :func:`~repro.engine.qlog.rewriting_signature` equals
    ``signature`` (``access="rewriting"``).  ``views`` is carried for
    audit readability only — matching is by signature."""

    unit: int
    pattern: int
    access: str  # "base" | "rewriting"
    signature: str = ""
    views: tuple[str, ...] = ()

    def as_dict(self) -> dict:
        return {
            "unit": self.unit,
            "pattern": self.pattern,
            "access": self.access,
            "signature": self.signature,
            "views": list(self.views),
        }

    @staticmethod
    def from_dict(data: dict) -> "PinnedChoice":
        return PinnedChoice(
            unit=int(data["unit"]),
            pattern=int(data["pattern"]),
            access=str(data["access"]),
            signature=str(data.get("signature", "")),
            views=tuple(data.get("views", ())),
        )


@dataclass(frozen=True)
class PinnedPlan:
    """A tournament-promoted plan for one normalized query.

    Pins bypass cost-model ranking at prepare time: the database re-finds
    each choice's rewriting by signature instead of calling
    ``rank_rewritings``.  They are stamped with the catalog version they
    were validated against and dropped (``plan_pin.invalidate``) the
    moment any view/document/statistics mutation bumps it — a stale pin
    must never outlive the state its benchmark evidence came from.
    ``fingerprint`` is the plan fingerprint the pinned preparation is
    expected to reproduce; ``margin`` records how much the winner beat the
    cost model's default pick by (fractional latency improvement);
    ``source`` names the audit trail that justifies the promotion.
    """

    query: str  # normalized query text
    catalog_version: int
    choices: tuple[PinnedChoice, ...]
    fingerprint: str = ""
    margin: float = 0.0
    source: str = ""

    def choice(self, unit: int, pattern: int) -> Optional[PinnedChoice]:
        for entry in self.choices:
            if entry.unit == unit and entry.pattern == pattern:
                return entry
        return None

    def as_dict(self) -> dict:
        return {
            "query": self.query,
            "catalog_version": self.catalog_version,
            "choices": [choice.as_dict() for choice in self.choices],
            "fingerprint": self.fingerprint,
            "margin": self.margin,
            "source": self.source,
        }

    @staticmethod
    def from_dict(data: dict) -> "PinnedPlan":
        return PinnedPlan(
            query=str(data["query"]),
            catalog_version=int(data["catalog_version"]),
            choices=tuple(
                PinnedChoice.from_dict(choice)
                for choice in data.get("choices", ())
            ),
            fingerprint=str(data.get("fingerprint", "")),
            margin=float(data.get("margin", 0.0)),
            source=str(data.get("source", "")),
        )

    def restamped(self, catalog_version: int) -> "PinnedPlan":
        """The same pin stamped for a different catalog version — what a
        loader applies after rebuilding identical state in a new process
        (version numbering is process-local; the signatures are not)."""
        return replace(self, catalog_version=catalog_version)


@dataclass(frozen=True)
class PinStats:
    """Immutable snapshot of the pin-store counters."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    size: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "size": self.size,
        }


class PlanPinStore:
    """Versioned map from normalized query text to its pinned plan.

    Deliberately *not* an LRU: pins are few (one per tournament-promoted
    query), explicitly installed, and must survive any amount of plan
    cache pressure — eviction economics apply to derived plans, not to
    benchmark-validated decisions.  The only automatic removal is the
    staleness drop: a lookup or purge at a newer catalog version
    invalidates the pin (counted, surfaced as ``plan_pin.invalidations``).
    Same locking discipline as :class:`PlanCache`.
    """

    def __init__(self) -> None:
        self._pins: dict[str, PinnedPlan] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._invalidations = 0

    # -- mutation -----------------------------------------------------------

    def pin(self, plan: PinnedPlan) -> None:
        with self._lock:
            self._pins[plan.query] = plan

    def drop(self, query: str) -> bool:
        with self._lock:
            return self._pins.pop(query, None) is not None

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._pins)
            self._pins.clear()
            return dropped

    def purge_stale(self, version: int) -> int:
        """Drop every pin not stamped at ``version`` (the eager half of
        the invalidation protocol; lazy lookup-time drops happen
        regardless).  Returns the number dropped."""
        with self._lock:
            stale = [
                query
                for query, pin in self._pins.items()
                if pin.catalog_version != version
            ]
            for query in stale:
                del self._pins[query]
            self._invalidations += len(stale)
            return len(stale)

    # -- lookups ------------------------------------------------------------

    def lookup(
        self, query: str, version: int
    ) -> tuple[Optional[PinnedPlan], str]:
        """``(pin, outcome)`` where outcome is ``"hit"``, ``"miss"`` or
        ``"stale"`` (version mismatch — the pin is dropped and counted as
        an invalidation and a miss)."""
        with self._lock:
            pin = self._pins.get(query)
            if pin is None:
                self._misses += 1
                return None, "miss"
            if pin.catalog_version != version:
                del self._pins[query]
                self._invalidations += 1
                self._misses += 1
                return None, "stale"
            self._hits += 1
            return pin, "hit"

    def get(self, query: str, version: int) -> Optional[PinnedPlan]:
        return self.lookup(query, version)[0]

    def entries(self) -> list[PinnedPlan]:
        with self._lock:
            return list(self._pins.values())

    def stats(self) -> PinStats:
        with self._lock:
            return PinStats(
                hits=self._hits,
                misses=self._misses,
                invalidations=self._invalidations,
                size=len(self._pins),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._pins)

    def __contains__(self, query: str) -> bool:
        with self._lock:
            return query in self._pins

    # -- persistence ---------------------------------------------------------

    def save(self, path: str) -> int:
        """Write every pin as JSON (the ``pins.json`` artifact of the
        tournament's audit directory).  Returns the number written."""
        pins = self.entries()
        payload = {"pins": [pin.as_dict() for pin in pins]}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        return len(pins)

    @staticmethod
    def load(path: str) -> list[PinnedPlan]:
        """Parse a pins file back into :class:`PinnedPlan` objects.  The
        caller decides how to re-stamp the catalog version (see
        :meth:`PinnedPlan.restamped`) — version numbering is process
        local, so the recorded stamps only mean something to the process
        that wrote them."""
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        return [PinnedPlan.from_dict(entry) for entry in payload.get("pins", ())]

    # -- introspection -------------------------------------------------------

    def register_metrics(self, registry, prefix: str = "plan_pin") -> None:
        """Mirror the pin counters into a metrics registry (the weakly
        referenced scrape-time collector idiom of :class:`PlanCache`)."""
        registry.counter(f"{prefix}.hits", "pinned-plan lookups that applied")
        registry.counter(f"{prefix}.misses", "pin lookups with nothing pinned")
        registry.counter(
            f"{prefix}.invalidations",
            "pins dropped on catalog-version bumps",
        )
        registry.gauge(f"{prefix}.size", "pinned plans currently installed")

        self_ref = weakref.ref(self)

        def collect(reg) -> None:
            store = self_ref()
            if store is None:  # don't pin dead stores to the registry
                reg.unregister_collector(collect)
                return
            stats = store.stats()
            reg.counter(f"{prefix}.hits").set_total(stats.hits)
            reg.counter(f"{prefix}.misses").set_total(stats.misses)
            reg.counter(f"{prefix}.invalidations").set_total(
                stats.invalidations
            )
            reg.set_gauge(f"{prefix}.size", stats.size)

        registry.register_collector(collect)

    def render(self) -> str:
        pins = self.entries()
        if not pins:
            return "no pinned plans"
        lines = []
        for pin in sorted(pins, key=lambda p: p.query):
            views = sorted(
                {name for choice in pin.choices for name in choice.views}
            )
            lines.append(
                f"{pin.fingerprint or '-'} v{pin.catalog_version} "
                f"margin={pin.margin:.1%} views={views} {pin.query}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"<PlanPinStore size={stats.size} hits={stats.hits} "
            f"invalidations={stats.invalidations}>"
        )
