"""A versioned, thread-safe LRU cache of prepared query plans.

The thesis' economics (§1.2.3–§1.2.4) are that many logical queries share
a few physical access paths; what makes that *pay* at runtime is not
re-deriving the access-path choice on every call.  The full pipeline —
parse → translate → extract maximal patterns → rewriting search over the
XAM catalog → rank → assemble → compile — is pure with respect to the
database state, so its output can be reused until that state changes.

:class:`PlanCache` keys entries on ``(normalized query text, flags)`` and
stamps each entry with the **catalog version** current when the plan was
prepared.  Any XAM / document / statistics mutation bumps the version
(see :attr:`repro.storage.catalog.Catalog.version` and
``Database.catalog_version``), so a later lookup finds a version mismatch
and drops the stale plan automatically — the cache never needs to know
*what* changed, only *that* something did.  This is the invalidation
protocol: versions only grow, entries carry the version they were built
against, and equality is the sole staleness test.

All operations take a single internal lock; the cache is safe to share
across the :class:`~repro.core.service.QueryService` worker threads.
Counters (hits / misses / evictions / invalidations) are maintained under
the same lock and exposed as an immutable :class:`CacheStats` snapshot.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Iterator, Optional

__all__ = [
    "CacheStats",
    "CompiledPlanArtifact",
    "CompiledSlot",
    "PlanCache",
    "normalize_query",
]


def normalize_query(text: str) -> str:
    """Whitespace-insensitive form of a query: the cache key treats
    ``//a/b`` and ``  //a/b  `` (and internal run-of-space differences)
    as the same query."""
    return " ".join(text.split())


@dataclass(frozen=True)
class CacheStats:
    """An immutable snapshot of the cache counters.

    ``invalidations`` counts entries dropped because the catalog version
    moved past them (on lookup or an explicit stale purge); ``evictions``
    counts capacity-driven LRU drops only.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }

    def render(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} invalidations={self.invalidations} "
            f"size={self.size}/{self.capacity} hit_rate={self.hit_rate:.0%}"
        )


class _Entry:
    __slots__ = ("value", "version")

    def __init__(self, value: Any, version: int):
        self.value = value
        self.version = version


class CompiledSlot:
    """One compiled batch closure of a plan artifact.

    ``plan`` is the physical operator tree the closure records metrics
    into (instrumentation attaches nodes to *this* tree, not whatever
    copy a later preparation produced); ``fn`` is the specialized
    closure; ``lock`` serializes executions — one artifact may be shared
    by every prepared query carrying the same fingerprint, and metrics
    instrumentation is per-plan-object state.
    """

    __slots__ = ("name", "plan", "fn", "lock")

    def __init__(self, name: str, plan: Any, fn: Any):
        self.name = name
        self.plan = plan
        self.fn = fn
        self.lock = threading.Lock()


class CompiledPlanArtifact:
    """The compiled-executor artifact cached under one plan fingerprint.

    A prepared query compiles to several physical plans — one per
    extraction unit (``unit:<n>``) plus one per chosen rewriting
    (``pattern:<unit>:<index>``); the artifact holds one
    :class:`CompiledSlot` per such plan, filled lazily as execution
    reaches it.  PR 5's fingerprint is the key: identical catalog state
    re-prepares to an identical fingerprint, so the closures are exactly
    reusable; any catalog-version bump makes the enclosing cache entry
    stale and the whole artifact is recompiled.
    """

    __slots__ = ("fingerprint", "version", "_slots", "_lock")

    def __init__(self, fingerprint: str, version: int = 0):
        self.fingerprint = fingerprint
        self.version = version
        self._slots: dict[str, CompiledSlot] = {}
        self._lock = threading.Lock()

    def slot(
        self, name: str, plan: Any, compiler: Any
    ) -> tuple[CompiledSlot, bool]:
        """The compiled slot for ``name``, compiling ``plan`` through
        ``compiler`` on first request.  Returns ``(slot, fresh)`` —
        ``fresh`` is True when this call did the compilation (a
        ``plan_compile.miss``), False on reuse (a ``plan_compile.hit``).
        """
        with self._lock:
            found = self._slots.get(name)
            if found is not None:
                return found, False
            compiled = CompiledSlot(name, plan, compiler(plan))
            self._slots[name] = compiled
            return compiled, True

    def slots(self) -> list[str]:
        with self._lock:
            return list(self._slots)

    def __len__(self) -> int:
        with self._lock:
            return len(self._slots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompiledPlanArtifact {self.fingerprint} "
            f"slots={len(self)} v{self.version}>"
        )


class PlanCache:
    """LRU map from query keys to prepared plans, with version stamps."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # -- lookups ------------------------------------------------------------

    def get(self, key: Hashable, version: int = 0) -> Optional[Any]:
        """The cached value, or None.  A key present at an older catalog
        version counts as an invalidation *and* a miss, and the stale
        entry is dropped."""
        return self.lookup(key, version)[0]

    def lookup(self, key: Hashable, version: int = 0) -> tuple[Optional[Any], str]:
        """Like :meth:`get`, but also reports the per-lookup outcome:
        ``"hit"``, ``"miss"``, or ``"stale"`` (version mismatch — counted
        as an invalidation and a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None, "miss"
            if entry.version != version:
                del self._entries[key]
                self._invalidations += 1
                self._misses += 1
                return None, "stale"
            self._entries.move_to_end(key)
            self._hits += 1
            return entry.value, "hit"

    def put(self, key: Hashable, value: Any, version: int = 0) -> None:
        with self._lock:
            self._entries[key] = _Entry(value, version)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    # -- invalidation -------------------------------------------------------

    def remove(self, key: Hashable) -> bool:
        """Drop one entry by key (counted as an invalidation when
        present).  The query service uses this after a degraded execution:
        the cached plan's top-ranked rewriting just failed, so the next
        preparation should re-rank with the circuit breakers in view."""
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self._invalidations += 1
            return True

    def purge_stale(self, version: int) -> int:
        """Drop every entry not built at ``version`` (the eager half of
        the protocol — lazy lookup-time drops happen regardless).
        Returns the number of entries dropped."""
        with self._lock:
            stale = [k for k, e in self._entries.items() if e.version != version]
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
            return len(stale)

    def clear(self) -> int:
        """Drop everything (counted as invalidations)."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._invalidations += dropped
            return dropped

    # -- introspection ------------------------------------------------------

    def register_metrics(self, registry, prefix: str = "plan_cache") -> None:
        """Publish this cache into a
        :class:`~repro.engine.metrics.MetricsRegistry`: a scrape-time
        collector mirrors the lifetime counters (hits / misses /
        evictions / invalidations are maintained under the cache lock
        anyway — no reason to double-count them on the hot path) and
        refreshes the size / capacity gauges.  ``prefix`` names the
        metric family, so several caches (the prepared-plan cache, the
        compiled-artifact cache) coexist on one registry."""
        registry.counter(f"{prefix}.hits", f"{prefix} hits (lifetime)")
        registry.counter(f"{prefix}.misses", f"{prefix} misses (lifetime)")
        registry.counter(f"{prefix}.evictions", "capacity-driven LRU drops")
        registry.counter(
            f"{prefix}.invalidations", "version/staleness-driven drops"
        )
        registry.gauge(f"{prefix}.size", "cached plans right now")
        registry.gauge(f"{prefix}.capacity", f"{prefix} capacity")

        self_ref = weakref.ref(self)

        def collect(reg) -> None:
            cache = self_ref()
            if cache is None:  # don't pin dead caches to the registry
                reg.unregister_collector(collect)
                return
            stats = cache.stats()
            reg.counter(f"{prefix}.hits").set_total(stats.hits)
            reg.counter(f"{prefix}.misses").set_total(stats.misses)
            reg.counter(f"{prefix}.evictions").set_total(stats.evictions)
            reg.counter(f"{prefix}.invalidations").set_total(stats.invalidations)
            reg.set_gauge(f"{prefix}.size", stats.size)
            reg.set_gauge(f"{prefix}.capacity", stats.capacity)

        registry.register_collector(collect)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def keys(self) -> list[Hashable]:
        """Current keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PlanCache {self.stats().render()}>"
