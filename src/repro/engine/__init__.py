"""Execution engine: physical operators, B+ tree, stores."""

from .breaker import BreakerBoard, CircuitBreaker
from .btree import BPlusTree
from .context import (
    CostModel,
    EmptyStatistics,
    ExecutionContext,
    OperatorMetrics,
    PlanMetrics,
    StatisticsProvider,
    Tunables,
)
from .faults import FAULT_POINTS, FaultInjector, FaultSpec, parse_fault_specs
from .orderdesc import satisfies, sort_key_for
from .plan_cache import CacheStats, PlanCache, normalize_query
from .qlog import (
    QueryLog,
    build_record,
    fingerprint_plan,
    iter_ok_records,
    result_checksum,
)
from .sentinel import PlanRegressionSentinel, RegressionFinding, SentinelConfig
from .physical import (
    PBase,
    PConcat,
    PDifference,
    PFilter,
    PHashGroupBy,
    PHashJoin,
    PLogicalFallback,
    PNestedLoopsJoin,
    PProject,
    PScan,
    PSort,
    PStackTreeAnc,
    PStackTreeDesc,
    PhysicalOperator,
    compile_plan,
    execute,
)
from .storage import Store, StoredRelation

__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "BPlusTree",
    "CostModel",
    "FAULT_POINTS",
    "FaultInjector",
    "FaultSpec",
    "parse_fault_specs",
    "EmptyStatistics",
    "ExecutionContext",
    "OperatorMetrics",
    "PlanMetrics",
    "StatisticsProvider",
    "Tunables",
    "satisfies",
    "sort_key_for",
    "CacheStats",
    "PlanCache",
    "normalize_query",
    "QueryLog",
    "build_record",
    "fingerprint_plan",
    "iter_ok_records",
    "result_checksum",
    "PlanRegressionSentinel",
    "RegressionFinding",
    "SentinelConfig",
    "PBase",
    "PConcat",
    "PDifference",
    "PFilter",
    "PHashGroupBy",
    "PHashJoin",
    "PLogicalFallback",
    "PNestedLoopsJoin",
    "PProject",
    "PScan",
    "PSort",
    "PStackTreeAnc",
    "PStackTreeDesc",
    "PhysicalOperator",
    "compile_plan",
    "execute",
    "Store",
    "StoredRelation",
]
