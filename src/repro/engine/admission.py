"""Overload protection primitives: admission control, adaptive
concurrency, retry budgets.

PR 3 taught the engine to *degrade* under storage faults (breakers,
rewriting-based fallback); this module extends the same protocol to
**load** faults.  The serving layer must fail partially and predictably
when offered more work than it has capacity for — shed early and typed,
never time out late after burning a worker slot, and never let recovery
mechanisms (retries) amplify the very storm they are recovering from.
Four primitives, composed by :class:`~repro.core.service.QueryService`:

* :class:`AdmissionController` — a bounded admission queue with
  deadline-aware shedding: a query whose remaining deadline cannot cover
  the *observed* queue wait (an EWMA over recent dequeues) is rejected
  at submit time with :class:`~repro.errors.QueryRejected` instead of
  queuing toward a guaranteed timeout.  Two priority classes
  (``interactive`` and ``background``) share the queue; background work
  gets a smaller share and is shed first when the limiter is degraded.
  The controller also answers the service's **readiness** question: a
  sustained shed rate over the recent decision window flips
  ``/health/ready`` to 503 until accepted work dilutes it.
* :class:`AdaptiveConcurrencyLimiter` — AIMD on windowed p99 latency:
  when the p99 of the last ``window`` executions exceeds
  ``degrade_factor`` × the healthy baseline (explicit ``target_latency``
  or the best windowed p99 seen), the effective concurrency limit is cut
  multiplicatively; healthy windows grow it back additively.  Worker
  threads above the limit block in :meth:`~AdaptiveConcurrencyLimiter.
  acquire`, so a degrading backend is offered *less* concurrency exactly
  when more would hurt.
* :class:`TokenBucket` — the shared retry budget: per-query retries
  spend from one bucket, so a breaker-open storm across many concurrent
  queries cannot multiply load when capacity is lowest.  An empty bucket
  converts retries into an immediate degraded fallback (see
  ``QueryService._execute_with_retries``).
* :func:`guard_exit` — a process-exit guard: ``ThreadPoolExecutor``
  threads are non-daemon and joined at interpreter shutdown, so a
  saturated pool would hang ``SIGTERM`` exits.  Guarded services are
  cancelled (cooperative stop flags + ``cancel_futures``) by a normal
  ``atexit`` hook, which runs *before* ``concurrent.futures`` joins its
  workers — exits stay prompt without resorting to daemon threads that
  could tear a query log mid-write.

Everything is standard library and engine-layer only (no core imports),
and every knob resolves through an environment variable so ``serve`` and
``replay`` deployments can be tuned without code changes.
"""

from __future__ import annotations

import atexit
import math
import os
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdaptiveConcurrencyLimiter",
    "TokenBucket",
    "guard_exit",
    "resolve_queue_capacity",
    "resolve_adaptive_limit",
    "resolve_retry_budget",
    "resolve_hedge",
    "resolve_hedge_delay",
    "QUEUE_CAPACITY_ENV_VAR",
    "ADAPTIVE_LIMIT_ENV_VAR",
    "RETRY_BUDGET_ENV_VAR",
    "RETRY_REFILL_ENV_VAR",
    "HEDGE_ENV_VAR",
    "HEDGE_DELAY_ENV_VAR",
    "PRIORITIES",
]

#: admission priority classes, shed in reverse order (background first)
PRIORITIES = ("interactive", "background")

#: environment knobs — every admission parameter is deployable without a
#: code change (``repro serve`` flags override these)
QUEUE_CAPACITY_ENV_VAR = "REPRO_QUEUE_CAPACITY"
ADAPTIVE_LIMIT_ENV_VAR = "REPRO_ADAPTIVE_LIMIT"
RETRY_BUDGET_ENV_VAR = "REPRO_RETRY_BUDGET"
RETRY_REFILL_ENV_VAR = "REPRO_RETRY_REFILL"
HEDGE_ENV_VAR = "REPRO_HEDGE"
HEDGE_DELAY_ENV_VAR = "REPRO_HEDGE_DELAY"


def resolve_queue_capacity(value: Optional[int], max_workers: int) -> int:
    """Admission queue bound (``None`` → ``$REPRO_QUEUE_CAPACITY`` → a
    generous ``max(64, 16 × workers)`` default that existing batch
    workloads never hit; overload deployments tune it down)."""
    if value is None:
        env = os.environ.get(QUEUE_CAPACITY_ENV_VAR)
        value = int(env) if env else max(64, 16 * max_workers)
    value = int(value)
    if value < 1:
        raise ValueError(f"admission queue capacity must be >= 1, got {value}")
    return value


def resolve_adaptive_limit(value: Optional[bool]) -> bool:
    """Whether the adaptive concurrency limiter is on (``None`` →
    ``$REPRO_ADAPTIVE_LIMIT`` → on)."""
    if value is not None:
        return bool(value)
    env = os.environ.get(ADAPTIVE_LIMIT_ENV_VAR)
    if env is None or env == "":
        return True
    return env.lower() not in ("0", "false", "no", "off")


def resolve_retry_budget(
    capacity: Optional[float], refill: Optional[float]
) -> tuple[float, float]:
    """``(capacity, refill per second)`` of the shared retry budget
    (``None`` → env vars → 256 tokens refilling at 64/s — effectively
    unlimited for a healthy workload, hard-bounded under a fault storm)."""
    if capacity is None:
        env = os.environ.get(RETRY_BUDGET_ENV_VAR)
        capacity = float(env) if env else 256.0
    if refill is None:
        env = os.environ.get(RETRY_REFILL_ENV_VAR)
        refill = float(env) if env else 64.0
    if capacity < 1:
        raise ValueError(f"retry budget capacity must be >= 1, got {capacity}")
    if refill < 0:
        raise ValueError(f"retry budget refill must be >= 0, got {refill}")
    return float(capacity), float(refill)


def resolve_hedge(value: Optional[bool]) -> bool:
    """Whether hedged shard scatter is on (``None`` → ``$REPRO_HEDGE`` →
    off — hedging re-issues work, so it is opt-in)."""
    if value is not None:
        return bool(value)
    env = os.environ.get(HEDGE_ENV_VAR)
    if env is None or env == "":
        return False
    return env.lower() not in ("0", "false", "no", "off")


def resolve_hedge_delay(value: "float | None") -> Optional[float]:
    """Explicit hedge delay in seconds (``None`` → ``$REPRO_HEDGE_DELAY``
    → None, meaning latency-percentile-derived)."""
    if value is None:
        env = os.environ.get(HEDGE_DELAY_ENV_VAR)
        value = float(env) if env else None
    if value is not None and value < 0:
        raise ValueError(f"hedge delay must be >= 0, got {value}")
    return value


# ---------------------------------------------------------------------------
# Token bucket (the shared retry budget)
# ---------------------------------------------------------------------------


class TokenBucket:
    """A thread-safe token bucket with continuous refill.

    ``try_spend`` never blocks: overload protection must not add waiting
    to the hot path — a caller that cannot afford the spend takes its
    fallback immediately.  ``clock`` is injectable so tests drive refill
    deterministically.
    """

    def __init__(
        self,
        capacity: float,
        refill_per_second: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity <= 0:
            raise ValueError("token bucket capacity must be > 0")
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self._clock = clock
        self._tokens = float(capacity)
        self._stamp = clock()
        self._lock = threading.Lock()
        #: lifetime totals, mirrored into metrics by the owning service
        self.spent = 0
        self.denied = 0

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        if self.refill_per_second > 0:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.refill_per_second
            )

    def try_spend(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; False (without waiting) if not."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                self.spent += 1
                return True
            self.denied += 1
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens

    def render(self) -> str:
        return (
            f"tokens={self.tokens:.1f}/{self.capacity:g} "
            f"refill={self.refill_per_second:g}/s "
            f"spent={self.spent} denied={self.denied}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TokenBucket {self.render()}>"


# ---------------------------------------------------------------------------
# Adaptive concurrency (AIMD on windowed p99)
# ---------------------------------------------------------------------------


class AdaptiveConcurrencyLimiter:
    """AIMD concurrency limit driven by latency percentiles.

    Worker threads call :meth:`acquire` before executing and
    :meth:`release` after; completions feed :meth:`observe` with their
    *execution* latency.  Every ``window`` observations the windowed p99
    is evaluated against the healthy baseline (``target_latency`` when
    given, else the best windowed p99 seen so far, the classic
    gradient-style self-calibration): degraded windows cut the limit
    multiplicatively (``decrease_factor``), healthy windows grow it
    additively (``increase_step``) — the same asymmetry TCP uses, because
    overshooting capacity is much more expensive than undershooting it.

    The limit never leaves ``[min_limit, max_limit]``; with the limiter
    disabled the service simply never constructs one.
    """

    def __init__(
        self,
        max_limit: int,
        min_limit: int = 1,
        window: int = 16,
        degrade_factor: float = 2.0,
        decrease_factor: float = 0.5,
        increase_step: float = 1.0,
        target_latency: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_limit < 1:
            raise ValueError("max concurrency limit must be >= 1")
        if not 1 <= min_limit <= max_limit:
            raise ValueError("need 1 <= min_limit <= max_limit")
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError("decrease factor must be in (0, 1)")
        self.max_limit = max_limit
        self.min_limit = min_limit
        self.window = max(2, int(window))
        self.degrade_factor = degrade_factor
        self.decrease_factor = decrease_factor
        self.increase_step = increase_step
        self.target_latency = target_latency
        self._clock = clock
        self._limit = float(max_limit)
        self._inflight = 0
        self._cond = threading.Condition()
        #: FIFO ticket gate: only the oldest waiter may take a freed slot,
        #: so a shrunken limit degrades every caller evenly instead of
        #: starving unlucky threads into huge latency tails
        self._next_ticket = 0
        self._serving = 0
        self._abandoned: set[int] = set()
        self._samples: list[float] = []
        self._best_p99: Optional[float] = None
        #: lifetime transition counts, mirrored into metrics
        self.decreases = 0
        self.increases = 0

    # -- observation --------------------------------------------------------

    def observe(self, seconds: float) -> None:
        """Feed one completed execution's latency; evaluates (and may
        re-size the limit) once per full window."""
        with self._cond:
            self._samples.append(seconds)
            if len(self._samples) < self.window:
                return
            ordered = sorted(self._samples)
            self._samples = []
            rank = math.ceil(0.99 * len(ordered))
            p99 = ordered[min(len(ordered) - 1, max(0, rank - 1))]
            baseline = self.target_latency
            if baseline is None:
                if self._best_p99 is None or p99 < self._best_p99:
                    self._best_p99 = p99
                baseline = self._best_p99
            if baseline and p99 > self.degrade_factor * baseline:
                shrunk = max(
                    float(self.min_limit), self._limit * self.decrease_factor
                )
                if shrunk < self._limit:
                    self._limit = shrunk
                    self.decreases += 1
            else:
                grown = min(
                    float(self.max_limit), self._limit + self.increase_step
                )
                if grown > self._limit:
                    self._limit = grown
                    self.increases += 1
                    self._cond.notify_all()

    # -- the concurrency gate -----------------------------------------------

    @property
    def limit(self) -> int:
        with self._cond:
            return max(self.min_limit, int(self._limit))

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def degraded(self) -> bool:
        """Whether the limiter has shrunk below full concurrency — the
        signal on which background work is shed first."""
        with self._cond:
            return int(self._limit) < self.max_limit

    def _skip_abandoned_locked(self) -> None:
        while self._serving in self._abandoned:
            self._abandoned.discard(self._serving)
            self._serving += 1

    def acquire(self, timeout: Optional[float] = None) -> bool:
        """Block until an execution slot is free (or ``timeout`` elapses;
        returns False then — the caller sheds instead of executing).
        Slots are granted in strict FIFO order: waiters hold tickets and
        only the oldest runnable ticket proceeds when capacity frees up."""
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            ticket = self._next_ticket
            self._next_ticket += 1
            while True:
                self._skip_abandoned_locked()
                if (
                    ticket == self._serving
                    and self._inflight
                    < max(self.min_limit, int(self._limit))
                ):
                    self._serving += 1
                    self._inflight += 1
                    # the next ticket may also be runnable (limit grew or
                    # several slots freed at once): wake the line
                    self._cond.notify_all()
                    return True
                remaining = (
                    None if deadline is None else deadline - self._clock()
                )
                if remaining is not None and remaining <= 0:
                    self._abandoned.add(ticket)
                    self._skip_abandoned_locked()
                    self._cond.notify_all()
                    return False
                self._cond.wait(remaining)

    def release(self) -> None:
        with self._cond:
            self._inflight = max(0, self._inflight - 1)
            self._cond.notify_all()

    def render(self) -> str:
        return (
            f"limit={self.limit}/{self.max_limit} inflight={self.inflight} "
            f"decreases={self.decreases} increases={self.increases}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AdaptiveConcurrencyLimiter {self.render()}>"


# ---------------------------------------------------------------------------
# Admission control (bounded queue, deadline-aware shed, readiness)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission check."""

    admitted: bool
    reason: str  #: "ok" | "queue_full" | "deadline" | "background_shed"
    priority: str
    queue_depth: int
    #: the wait estimate used for the deadline check — doubles as the
    #: retry-after hint of a rejection
    wait_estimate: float


class AdmissionController:
    """Bounded admission with deadline-aware shedding and readiness.

    The controller does not own a queue — the worker pool's is the real
    one — it *accounts* for it: ``try_admit`` (caller thread, before the
    pool submit) bounds the depth and predicts the wait; ``started``
    (worker thread, at pickup) measures the actual wait into an EWMA;
    ``cancelled`` unwinds a queued entry whose future was cancelled
    before a worker ever ran it.

    The shed-before-timeout invariant: when a deadline is supplied and
    ``now + EWMA(queue wait) >= deadline``, the query is rejected *now*,
    with the estimate as its retry-after hint — a guaranteed-late query
    must not consume the slot a viable one could use.

    Readiness is a sliding window over admission decisions: shed
    fraction ≥ ``ready_shed_threshold`` within the last ``ready_horizon``
    seconds (given at least ``ready_min_samples`` decisions) reports not
    ready.  Accepted work dilutes the window, so readiness recovers as
    soon as the service is genuinely keeping up again.
    """

    def __init__(
        self,
        queue_capacity: int,
        limiter: Optional[AdaptiveConcurrencyLimiter] = None,
        background_share: float = 0.5,
        wait_smoothing: float = 0.3,
        ready_shed_threshold: float = 0.5,
        ready_window: int = 32,
        ready_min_samples: int = 4,
        ready_horizon: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if queue_capacity < 1:
            raise ValueError("admission queue capacity must be >= 1")
        if not 0.0 < background_share <= 1.0:
            raise ValueError("background share must be in (0, 1]")
        self.queue_capacity = queue_capacity
        self.limiter = limiter
        self.background_share = background_share
        self.ready_shed_threshold = ready_shed_threshold
        self.ready_min_samples = ready_min_samples
        self.ready_horizon = ready_horizon
        self._wait_smoothing = wait_smoothing
        self._clock = clock
        self._lock = threading.Lock()
        self._depth = 0
        self._wait_ewma: Optional[float] = None
        self._outcomes: deque[tuple[float, bool]] = deque(maxlen=ready_window)
        #: lifetime totals, mirrored into metrics by the owning service
        self.admitted = 0
        self.shed = 0

    # -- the admission decision ---------------------------------------------

    def try_admit(
        self, priority: str = "interactive", deadline: Optional[float] = None
    ) -> AdmissionDecision:
        if priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {priority!r}: expected one of {PRIORITIES}"
            )
        now = self._clock()
        with self._lock:
            estimate = self._wait_ewma or 0.0
            capacity = self.queue_capacity
            if priority == "background":
                capacity = max(1, int(capacity * self.background_share))
            reason = "ok"
            if self._depth >= capacity:
                reason = "queue_full"
            elif (
                priority == "background"
                and self.limiter is not None
                and self.limiter.degraded
            ):
                # background is shed first: any limiter degradation means
                # interactive traffic gets the shrunken capacity
                reason = "background_shed"
            elif deadline is not None and now + estimate >= deadline:
                reason = "deadline"
            if reason != "ok":
                self.shed += 1
                self._outcomes.append((now, True))
                return AdmissionDecision(
                    False, reason, priority, self._depth, estimate
                )
            self._depth += 1
            self.admitted += 1
            self._outcomes.append((now, False))
            return AdmissionDecision(
                True, "ok", priority, self._depth, estimate
            )

    # -- worker-side accounting ---------------------------------------------

    def started(self, queued_at: float) -> float:
        """A worker picked an admitted query up; returns the measured
        queue wait and folds it into the EWMA the deadline check uses."""
        wait = max(0.0, self._clock() - queued_at)
        with self._lock:
            self._depth = max(0, self._depth - 1)
            if self._wait_ewma is None:
                self._wait_ewma = wait
            else:
                alpha = self._wait_smoothing
                self._wait_ewma = alpha * wait + (1 - alpha) * self._wait_ewma
        return wait

    def cancelled(self) -> None:
        """An admitted query's future was cancelled while still queued —
        unwind the depth accounting (no wait sample: it never ran)."""
        with self._lock:
            self._depth = max(0, self._depth - 1)

    def note_shed(self) -> None:
        """Record a shed that happened *after* admission (queued-then-
        shed, limiter-deadline) into the readiness window."""
        with self._lock:
            self.shed += 1
            self._outcomes.append((self._clock(), True))

    # -- introspection -------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    @property
    def wait_estimate(self) -> float:
        with self._lock:
            return self._wait_ewma or 0.0

    def ready(self) -> bool:
        """False while the recent decision window shows sustained shed."""
        now = self._clock()
        with self._lock:
            recent = [
                was_shed
                for ts, was_shed in self._outcomes
                if now - ts <= self.ready_horizon
            ]
            if len(recent) < self.ready_min_samples:
                return True
            fraction = sum(recent) / len(recent)
            return fraction < self.ready_shed_threshold

    def render(self) -> str:
        return (
            f"depth={self.depth}/{self.queue_capacity} "
            f"wait~{self.wait_estimate * 1000:.2f}ms "
            f"admitted={self.admitted} shed={self.shed} "
            f"ready={'yes' if self.ready() else 'NO'}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AdmissionController {self.render()}>"


# ---------------------------------------------------------------------------
# Prompt-exit guard
# ---------------------------------------------------------------------------

#: object → shutdown callable (unbound, so the registry never keeps a
#: guarded service alive); drained by one atexit hook, which Python runs
#: *before* threading's shutdown joins non-daemon pool workers
_GUARDED: "weakref.WeakKeyDictionary[object, Callable[[object], None]]" = (
    weakref.WeakKeyDictionary()
)
_GUARD_LOCK = threading.Lock()


def guard_exit(obj: object, shutdown: Callable[[object], None]) -> None:
    """Arrange for ``shutdown(obj)`` to run at interpreter exit (unless
    ``obj`` was garbage-collected first).  ``shutdown`` must be an
    unbound callable — typically the class's shutdown method — so the
    guard holds no strong reference to ``obj``."""
    with _GUARD_LOCK:
        _GUARDED[obj] = shutdown


@atexit.register
def _drain_exit_guards() -> None:  # pragma: no cover - interpreter exit
    with _GUARD_LOCK:
        survivors = list(_GUARDED.items())
    for obj, shutdown in survivors:
        try:
            shutdown(obj)
        except Exception:
            pass  # exiting: nothing useful left to do with a failure
