"""A B+ tree.

The thesis' physical ``Sort`` operator is "based on a persistent B+ tree"
(§1.2.3) and value indexes need ordered composite-key lookups; this module
supplies both.  Keys are tuples of comparable atoms (``None`` sorts first);
values are opaque.  Duplicate keys are supported — each leaf slot holds the
list of values inserted under the key.

The implementation is a classic order-``m`` B+ tree with leaf chaining for
range scans; it is deliberately free of any repro-specific types so it can
be reused (and is tested) standalone.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional, Sequence

__all__ = ["BPlusTree"]


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: list[tuple] = []
        self.children: list[_Node] = []  # internal nodes
        self.values: list[list[Any]] = []  # leaves: one bucket per key
        self.next_leaf: Optional[_Node] = None


class _Key:
    """Comparable wrapper placing ``None`` first and ordering mixed types
    by type name (total order for heterogeneous keys).  The original key
    tuple is kept so iteration can hand it back."""

    __slots__ = ("parts", "raw")

    def __init__(self, raw: tuple):
        self.raw = raw
        self.parts = tuple(
            (0, "") if part is None else (1, type(part).__name__, part)
            for part in raw
        )

    def __lt__(self, other: "_Key") -> bool:
        return self.parts < other.parts

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Key) and self.parts == other.parts

    def __le__(self, other: "_Key") -> bool:
        return self.parts <= other.parts

    def __hash__(self) -> int:
        return hash(self.parts)


class BPlusTree:
    """An order-``m`` B+ tree mapping tuple keys to value buckets."""

    def __init__(self, order: int = 32):
        if order < 4:
            raise ValueError("B+ tree order must be at least 4")
        self.order = order
        self.root = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- insertion ----------------------------------------------------------

    def insert(self, key: Sequence[Any], value: Any) -> None:
        wrapped = _Key(tuple(key))
        split = self._insert(self.root, wrapped, value)
        if split is not None:
            middle, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [middle]
            new_root.children = [self.root, right]
            self.root = new_root
        self._size += 1

    def _insert(self, node: _Node, key: _Key, value: Any):
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(value)
            else:
                node.keys.insert(index, key)
                node.values.insert(index, [value])
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is not None:
            middle, right = split
            node.keys.insert(index, middle)
            node.children.insert(index + 1, right)
            if len(node.keys) > self.order:
                return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.keys) // 2
        middle_key = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return middle_key, right

    # -- lookups --------------------------------------------------------------

    def _leaf_for(self, key: _Key) -> _Node:
        node = self.root
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def search(self, key: Sequence[Any]) -> list[Any]:
        """All values inserted under ``key`` (empty list when absent)."""
        wrapped = _Key(tuple(key))
        leaf = self._leaf_for(wrapped)
        index = bisect.bisect_left(leaf.keys, wrapped)
        if index < len(leaf.keys) and leaf.keys[index] == wrapped:
            return list(leaf.values[index])
        return []

    def __contains__(self, key: Sequence[Any]) -> bool:
        return bool(self.search(key))

    def items(self) -> Iterator[tuple[tuple, Any]]:
        """All (key, value) pairs in key order (duplicates expanded)."""
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            for key, bucket in zip(node.keys, node.values):
                for value in bucket:
                    yield key.raw, value
            node = node.next_leaf

    def values_in_order(self) -> Iterator[Any]:
        for _key, value in self.items():
            yield value

    def range(
        self, low: Optional[Sequence[Any]] = None, high: Optional[Sequence[Any]] = None
    ) -> Iterator[tuple[tuple, Any]]:
        """(key, value) pairs with ``low ≤ key ≤ high`` (inclusive bounds,
        ``None`` = unbounded)."""
        if low is None:
            node = self.root
            while not node.is_leaf:
                node = node.children[0]
            start_index = 0
        else:
            low_key = _Key(tuple(low))
            node = self._leaf_for(low_key)
            start_index = bisect.bisect_left(node.keys, low_key)
        high_key = _Key(tuple(high)) if high is not None else None
        while node is not None:
            for index in range(start_index, len(node.keys)):
                key = node.keys[index]
                if high_key is not None and high_key < key:
                    return
                for value in node.values[index]:
                    yield key.raw, value
            node = node.next_leaf
            start_index = 0

    def depth(self) -> int:
        node = self.root
        count = 1
        while not node.is_leaf:
            node = node.children[0]
            count += 1
        return count
