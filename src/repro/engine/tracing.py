"""Span-based tracing of the query lifecycle.

EXPLAIN (PR 1) answers "why this plan?" for one query run under
instrumentation; what it cannot answer is "what happened to the query
that was slow at 3am" — the plan choice, the cache outcome, the faults
injected, the breaker transitions, the retries, and where the time went,
*after the fact*.  This module records that story as a span tree:

========================  ====================================================
span                      covers
========================  ====================================================
``query``                 the whole lifecycle (the root; one per trace)
``parse``                 query text → AST
``extract``               AST → maximal query patterns (translation included)
``rewrite-search``        rewriting enumeration for one pattern
``rank``                  cost-ranking the candidate rewritings
``compile``               logical → physical lowering
``execute``               running the prepared plan against the store
``unit``                  one extraction unit inside ``execute``
``pattern``               one pattern access inside a unit
``retry``                 one backoff sleep before a re-attempt
========================  ====================================================

plus zero-duration **event spans** (``cache.hit`` / ``cache.miss`` /
``cache.stale``, ``fault.injected``, ``breaker.opened``,
``degraded.reroute``, ``degraded.base-fallback``) stamped where PRs 2–3
only bumped counters.  Every span carries the trace id that
:class:`~repro.core.uload.QueryResult` / ``ExplainReport`` expose, so a
result in hand leads back to its full tree via :meth:`Tracer.get`.

Design constraints:

* **bounded**: the tracer keeps the last ``capacity`` traces in a ring —
  tracing a sustained workload must not leak (the same discipline the
  latency recorder's ring buffer follows);
* **cheap when off**: a ``None`` trace on the
  :class:`~repro.engine.context.ExecutionContext` makes ``span()`` /
  ``event()`` single-branch no-ops, keeping overhead well under the 5%
  budget the CI observability lane enforces;
* **single-writer spans, concurrent readers**: one query runs on one
  worker thread, but its trace is published in the tracer ring *while
  still open* — an HTTP scrape of ``/trace/<id>`` or a slow-query render
  can walk the tree mid-mutation.  Each trace therefore carries one
  plain lock: the writer takes it per span transition, readers take it
  to snapshot/render.  The tracer's ring and the slow-query log (shared
  across workers) keep their own locks.

:class:`SlowQueryLog` rides on top: the query service captures the
rendered span tree of any query slower than a configurable threshold —
the production answer to "which queries hurt, and why".
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "SlowQueryLog",
    "SlowQuery",
    "active_spans",
]


_ids = itertools.count(1)


def _next_id(prefix: str) -> str:
    return f"{prefix}{next(_ids):08x}"


#: thread ident → (trace_id, innermost open span name), maintained by
#: span transitions so the continuous profiler's sampler thread can tag
#: stack samples with the query phase running on each worker.  Writes are
#: single-key dict stores from the owning worker thread and reads are a
#: ``dict()`` copy — both atomic under the GIL, so no lock is paid on the
#: span hot path (the tracing-overhead CI gate budget).
_ACTIVE_SPANS: dict[int, tuple[str, str]] = {}


def active_spans() -> dict[int, tuple[str, str]]:
    """Snapshot of the per-thread active spans: ``{thread ident:
    (trace_id, span name)}``.  Entries disappear when their trace
    finishes and are overwritten by the next query on the same worker."""
    return dict(_ACTIVE_SPANS)


@dataclass
class Span:
    """One timed step of a query's lifecycle.

    ``end`` is None while the span is open; :meth:`finish` is one-shot
    (double-finishing is a tracing bug and raises, which is what the
    stress suite leans on to prove no span is double-closed).
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    start: float = 0.0
    end: Optional[float] = None
    status: str = "ok"
    attributes: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def ended(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def finish(self, status: str = "ok", **attributes) -> "Span":
        if self.end is not None:
            raise RuntimeError(
                f"span {self.name!r} ({self.span_id}) finished twice"
            )
        self.end = time.perf_counter()
        self.status = status
        if attributes:
            self.attributes.update(attributes)
        return self

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def pretty(self, indent: int = 0) -> str:
        duration = self.duration
        timing = "…open…" if duration is None else f"{duration * 1000:.3f}ms"
        text = f"{'  ' * indent}{self.name}  [{timing}]"
        if self.status != "ok":
            text += f" status={self.status}"
        if self.attributes:
            attrs = " ".join(
                f"{key}={value}" for key, value in sorted(self.attributes.items())
            )
            text += f"  {attrs}"
        lines = [text]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
            "children": [child.as_dict() for child in self.children],
        }


class Trace:
    """The span tree of one query lifecycle.

    Spans are created through the owning :class:`Tracer` (or the
    execution context's ``span()`` helper) and always attach under the
    current innermost open span, so the tree mirrors the call structure.
    """

    def __init__(self, trace_id: str, root_name: str = "query"):
        self.trace_id = trace_id
        self.root = Span(
            name=root_name,
            trace_id=trace_id,
            span_id=_next_id("s"),
            start=time.perf_counter(),
        )
        self._stack: list[Span] = [self.root]
        _ACTIVE_SPANS[threading.get_ident()] = (trace_id, root_name)
        # guards _stack and every Span's children list: the owning worker
        # is the only writer, but /trace/<id> scrapes read open traces
        # concurrently.  Plain Lock — locked methods inline the stack
        # access instead of re-entering through ``current``.
        self._lock = threading.Lock()

    # -- span lifecycle -----------------------------------------------------

    @property
    def current(self) -> Span:
        with self._lock:
            return self._stack[-1] if self._stack else self.root

    def start_span(self, name: str, **attributes) -> Span:
        with self._lock:
            parent = self._stack[-1] if self._stack else self.root
            span = Span(
                name=name,
                trace_id=self.trace_id,
                span_id=_next_id("s"),
                parent_id=parent.span_id,
                start=time.perf_counter(),
                attributes=dict(attributes),
            )
            parent.children.append(span)
            self._stack.append(span)
            _ACTIVE_SPANS[threading.get_ident()] = (self.trace_id, name)
            return span

    def finish_span(self, span: Span, status: str = "ok", **attributes) -> None:
        with self._lock:
            span.finish(status, **attributes)
            if self._stack and self._stack[-1] is span:
                self._stack.pop()
            if self._stack:
                _ACTIVE_SPANS[threading.get_ident()] = (
                    self.trace_id,
                    self._stack[-1].name,
                )

    def event(self, name: str, **attributes) -> Span:
        """A zero-duration child span marking a point event (cache
        outcome, fault injection, breaker transition, reroute)."""
        with self._lock:
            parent = self._stack[-1] if self._stack else self.root
            now = time.perf_counter()
            span = Span(
                name=name,
                trace_id=self.trace_id,
                span_id=_next_id("s"),
                parent_id=parent.span_id,
                start=now,
                end=now,
                attributes=dict(attributes),
            )
            parent.children.append(span)
            return span

    def finish(self, status: str = "ok") -> None:
        """Close the trace: any still-open non-root spans are finished
        with the trace's final status (an error propagating out of a span
        body unwinds through here), then the root."""
        with self._lock:
            while len(self._stack) > 1:
                self._stack[-1].finish(status)
                self._stack.pop()
            if not self.root.ended:
                self.root.finish(status)
                self._stack.clear()
            ident = threading.get_ident()
            if _ACTIVE_SPANS.get(ident, (None,))[0] == self.trace_id:
                _ACTIVE_SPANS.pop(ident, None)

    # -- introspection ------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.root.ended

    @property
    def duration(self) -> Optional[float]:
        return self.root.duration

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self.root.walk())

    def find(self, name: str) -> list[Span]:
        with self._lock:
            return [span for span in self.root.walk() if span.name == name]

    def complete(self) -> bool:
        """Every span closed and reachable from the root — the "no span
        orphaned or double-closed" check, structurally."""
        with self._lock:
            return all(span.ended for span in self.root.walk())

    def render(self) -> str:
        with self._lock:
            return self.root.pretty()

    def as_dict(self) -> dict:
        with self._lock:
            return {"trace_id": self.trace_id, "root": self.root.as_dict()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Trace {self.trace_id} {len(self.spans())} spans>"


class Tracer:
    """Creates traces and retains the most recent ``capacity`` of them.

    The ring is insertion-ordered: starting trace N+capacity evicts the
    oldest.  Lookup by trace id serves the ``/trace/<id>`` HTTP route and
    the ``.trace`` REPL command.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._traces: "OrderedDict[str, Trace]" = OrderedDict()
        self._lock = threading.Lock()
        self._started = 0
        self._evicted = 0

    def start_trace(self, root_name: str = "query") -> Trace:
        trace = Trace(_next_id("t"), root_name)
        with self._lock:
            self._started += 1
            self._traces[trace.trace_id] = trace
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)
                self._evicted += 1
        return trace

    def get(self, trace_id: str) -> Optional[Trace]:
        with self._lock:
            return self._traces.get(trace_id)

    def traces(self) -> list[Trace]:
        """Retained traces, oldest first."""
        with self._lock:
            return list(self._traces.values())

    def trace_ids(self) -> list[str]:
        with self._lock:
            return list(self._traces)

    @property
    def started(self) -> int:
        with self._lock:
            return self._started

    @property
    def evicted(self) -> int:
        with self._lock:
            return self._evicted

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tracer {len(self)}/{self.capacity} traces>"


@dataclass(frozen=True)
class SlowQuery:
    """One slow-query log entry: enough to reconstruct the incident
    without the tracer ring still holding the trace."""

    trace_id: str
    query: str
    seconds: float
    outcome: str
    rendered: str  # the full span tree, rendered at capture time
    #: plan fingerprint of the execution that was slow — actionable
    #: without cross-referencing the query log
    plan_fingerprint: str = ""
    #: which engine ran it ("iter"/"batch")
    executor: str = ""
    #: top CPU-consuming operators ("label cpu=…ms" strings), present
    #: only when the query ran with attributed profiling enabled
    top_cpu: tuple = ()

    def summary(self) -> str:
        text = (
            f"{self.seconds * 1000:.1f}ms [{self.outcome}] "
            f"trace={self.trace_id} {self.query}"
        )
        if self.plan_fingerprint:
            text += f" plan={self.plan_fingerprint}"
        if self.executor:
            text += f" executor={self.executor}"
        return text


class SlowQueryLog:
    """Bounded log of queries that exceeded the latency threshold.

    ``threshold`` is in seconds; ``None`` disables capture entirely (the
    check then costs one comparison).  The service records the *full*
    rendered span tree at capture time: a slow query's trace may be
    evicted from the tracer ring long before anyone reads the log.
    """

    def __init__(self, threshold: Optional[float] = None, capacity: int = 64):
        self.threshold = threshold
        self._entries: deque[SlowQuery] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._captured = 0

    def consider(
        self,
        query: str,
        seconds: float,
        outcome: str,
        trace: Optional[Trace],
        plan_fingerprint: str = "",
        executor: str = "",
        top_cpu: tuple = (),
    ) -> Optional[SlowQuery]:
        if self.threshold is None or seconds < self.threshold:
            return None
        entry = SlowQuery(
            trace_id=trace.trace_id if trace is not None else "",
            query=query,
            seconds=seconds,
            outcome=outcome,
            rendered=trace.render() if trace is not None else "(tracing disabled)",
            plan_fingerprint=plan_fingerprint,
            executor=executor,
            top_cpu=tuple(top_cpu),
        )
        with self._lock:
            self._entries.append(entry)
            self._captured += 1
        return entry

    def entries(self) -> list[SlowQuery]:
        with self._lock:
            return list(self._entries)

    @property
    def captured(self) -> int:
        with self._lock:
            return self._captured

    def render(self) -> str:
        entries = self.entries()
        if not entries:
            return "no slow queries captured"
        lines = []
        for entry in entries:
            lines.append(entry.summary())
            for rank, op in enumerate(entry.top_cpu, 1):
                lines.append(f"  cpu#{rank} {op}")
            lines.extend(f"  {line}" for line in entry.rendered.splitlines())
        return "\n".join(lines)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
