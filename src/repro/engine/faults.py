"""Deterministic, seedable fault injection at storage-model boundaries.

The rewriting search (thesis §4–§5) enumerates many S-equivalent plans
over different XML Access Modules; the availability claim behind that is
only testable if storage faults can be produced on demand.  This module
plants **named fault points** at every boundary where the engine touches
a physical structure:

========================  ====================================================
point                     fired by
========================  ====================================================
``relation.scan``         reading a base relation out of ``Store.context()``
``btree.lookup``          a B+-tree probe (``StoredRelation.lookup``)
``index.structural``      a pre/post-plane window query
``index.value``           a value-index probe (``materialize.index_lookup``)
``index.fulltext``        an inverted-file probe (``fulltext_lookup``)
``blob.fetch``            reading a blob/content relation's textual field
========================  ====================================================

A :class:`FaultInjector` holds :class:`FaultSpec`\\ s describing *what* to
inject (``transient`` → :class:`~repro.errors.TransientStorageFault`,
``corrupt`` → :class:`~repro.errors.AccessModuleUnavailable`, ``latency``
→ a sleep), *where* (point name or ``*``, optionally narrowed to one XAM
by ``@name``), and *how often* (a probability drawn from a seeded RNG and
an optional trigger budget).  Same seed + same execution order ⇒ same
faults — the chaos suite's reproducibility contract.

Activation is scoped, never ambient: the executor wraps plan execution in
:func:`scope` with the injector carried by its
:class:`~repro.engine.context.ExecutionContext` (set per query, by
``repro serve --chaos``, or from the ``REPRO_FAULTS`` /
``REPRO_FAULT_SEED`` environment).  :func:`check` is a no-op when no
scope is active, so the fault points cost one attribute read in
production.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..errors import AccessModuleUnavailable, TransientStorageFault

__all__ = [
    "FAULT_POINTS",
    "FAULT_KINDS",
    "RELATION_SCAN",
    "BTREE_LOOKUP",
    "INDEX_STRUCTURAL",
    "INDEX_VALUE",
    "INDEX_FULLTEXT",
    "BLOB_FETCH",
    "FaultSpec",
    "FaultInjector",
    "parse_fault_specs",
    "injector_from_env",
    "scope",
    "check",
]

RELATION_SCAN = "relation.scan"
BTREE_LOOKUP = "btree.lookup"
INDEX_STRUCTURAL = "index.structural"
INDEX_VALUE = "index.value"
INDEX_FULLTEXT = "index.fulltext"
BLOB_FETCH = "blob.fetch"

FAULT_POINTS = (
    RELATION_SCAN,
    BTREE_LOOKUP,
    INDEX_STRUCTURAL,
    INDEX_VALUE,
    INDEX_FULLTEXT,
    BLOB_FETCH,
)

FAULT_KINDS = ("transient", "corrupt", "latency")

#: environment variables consulted by :func:`injector_from_env`
ENV_FAULTS = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULT_SEED"


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule.

    ``point`` is a fault-point name or ``"*"``; ``target`` narrows the
    rule to one access module (relation / XAM name), ``None`` matching
    all.  ``probability`` is drawn per matching check from the injector's
    seeded RNG; ``times`` caps how often the rule fires (``None`` =
    unlimited) — ``times=2`` with a transient kind models an I/O error
    that clears on the third attempt.  ``latency`` (seconds) applies to
    the ``latency`` kind only.
    """

    point: str
    kind: str
    target: Optional[str] = None
    probability: float = 1.0
    times: Optional[int] = None
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (expected one of {FAULT_KINDS})"
            )
        if self.point != "*" and self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r} (expected one of "
                f"{FAULT_POINTS} or '*')"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability out of [0, 1]: {self.probability}")

    def matches(self, point: str, target: Optional[str]) -> bool:
        if self.point != "*" and self.point != point:
            return False
        if self.target is not None and self.target != target:
            return False
        return True

    def render(self) -> str:
        text = self.point
        if self.target is not None:
            text += f"@{self.target}"
        text += f":{self.kind}"
        if self.kind == "latency":
            text += f":{self.latency:g}"
        elif self.probability != 1.0:
            text += f":{self.probability:g}"
        if self.times is not None:
            text += f":{self.times}"
        return text


def parse_fault_specs(text: str) -> list[FaultSpec]:
    """Parse a spec string: ``point[@target]:kind[:arg][:times]`` items
    separated by ``,`` or ``;``.  ``arg`` is the probability (``corrupt``
    / ``transient``) or the delay in seconds (``latency``).

    Examples::

        relation.scan@v_person:corrupt
        *:transient:0.25
        btree.lookup:latency:0.05
        relation.scan:transient:1.0:2    # always, but only twice
    """
    specs: list[FaultSpec] = []
    for item in text.replace(";", ",").split(","):
        item = item.strip()
        if not item:
            continue
        fields = item.split(":")
        if len(fields) < 2:
            raise ValueError(f"fault spec needs point:kind, got {item!r}")
        where, kind = fields[0], fields[1].strip().lower()
        point, _, target = where.partition("@")
        probability, latency, times = 1.0, 0.0, None
        if len(fields) > 2 and fields[2]:
            if kind == "latency":
                latency = float(fields[2])
            else:
                probability = float(fields[2])
        if len(fields) > 3 and fields[3]:
            times = int(fields[3])
        specs.append(
            FaultSpec(
                point=point.strip(),
                kind=kind,
                target=target.strip() or None,
                probability=probability,
                times=times,
                latency=latency,
            )
        )
    return specs


class FaultInjector:
    """Evaluates fault specs at fault points, deterministically.

    One seeded ``random.Random`` drives every probability draw, so a
    fixed seed and a fixed execution order replay the exact same fault
    sequence.  Thread-safe: the chaos serve mode shares one injector
    across worker threads (cross-thread interleaving is then the only
    source of nondeterminism, as with any shared fault source).
    """

    def __init__(
        self,
        specs: "Sequence[FaultSpec] | str",
        seed: int = 0,
        sleep=time.sleep,
    ):
        if isinstance(specs, str):
            specs = parse_fault_specs(specs)
        self.specs = list(specs)
        self.seed = seed
        self._rng = random.Random(seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._fired = [0] * len(self.specs)
        #: total injections per ``"point:kind"`` (observability/tests)
        self.injected: dict[str, int] = {}

    def reset(self) -> None:
        """Rewind the RNG and the per-spec trigger budgets."""
        with self._lock:
            self._rng = random.Random(self.seed)
            self._fired = [0] * len(self.specs)
            self.injected.clear()

    def check(self, point: str, target: Optional[str] = None, counters=None) -> None:
        """Fire at a fault point: may sleep (latency) or raise a typed
        storage fault.  ``counters`` is an optional ``ExecutionContext``
        whose ``faults.injected.<kind>`` counters are bumped."""
        delay = 0.0
        fault: Optional[Exception] = None
        with self._lock:
            for index, spec in enumerate(self.specs):
                if not spec.matches(point, target):
                    continue
                if spec.times is not None and self._fired[index] >= spec.times:
                    continue
                if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                    continue
                self._fired[index] += 1
                key = f"{point}:{spec.kind}"
                self.injected[key] = self.injected.get(key, 0) + 1
                if counters is not None:
                    counters.bump(f"faults.injected.{spec.kind}")
                    # stamp the injection into the query's trace, when the
                    # counters sink is a (tracing-capable) ExecutionContext
                    event = getattr(counters, "event", None)
                    if event is not None:
                        event(
                            "fault.injected",
                            point=point,
                            kind=spec.kind,
                            **({"target": target} if target else {}),
                        )
                if spec.kind == "latency":
                    delay += spec.latency
                    continue
                where = f" reading {target!r}" if target else ""
                if spec.kind == "transient":
                    fault = TransientStorageFault(
                        f"injected transient I/O error at {point}{where}",
                        point=point,
                        xam=target,
                    )
                else:
                    fault = AccessModuleUnavailable(
                        f"injected corruption at {point}{where}",
                        point=point,
                        xam=target,
                        corrupt=True,
                    )
                break
        if delay > 0.0:
            self._sleep(delay)
        if fault is not None:
            raise fault

    def render(self) -> str:
        parts = [spec.render() for spec in self.specs]
        return f"seed={self.seed} " + (",".join(parts) if parts else "(no specs)")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector {self.render()}>"


# ---------------------------------------------------------------------------
# Scoped activation
# ---------------------------------------------------------------------------

_local = threading.local()

#: cache of the environment-configured injector, keyed on the env values
#: so tests can flip the variables without explicit invalidation
_env_cache: tuple[Optional[tuple[str, str]], Optional[FaultInjector]] = (None, None)
_env_lock = threading.Lock()


def injector_from_env() -> Optional[FaultInjector]:
    """The process-wide injector configured by ``REPRO_FAULTS`` (spec
    string) and ``REPRO_FAULT_SEED``; None when the variable is unset.
    Cached so trigger budgets persist across queries."""
    global _env_cache
    text = os.environ.get(ENV_FAULTS)
    if not text:
        return None
    seed_text = os.environ.get(ENV_SEED, "0")
    key = (text, seed_text)
    with _env_lock:
        if _env_cache[0] == key:
            return _env_cache[1]
        injector = FaultInjector(parse_fault_specs(text), seed=int(seed_text))
        _env_cache = (key, injector)
        return injector


@contextmanager
def scope(injector: Optional[FaultInjector], counters=None) -> Iterator[None]:
    """Activate an injector for the current thread.  Scopes nest; the
    innermost wins.  A ``None`` injector is a true no-op."""
    if injector is None:
        yield
        return
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    stack.append((injector, counters))
    try:
        yield
    finally:
        stack.pop()


def check(point: str, target: Optional[str] = None) -> None:
    """The fault point probe storage code calls.  Free when no scope is
    active on this thread."""
    stack = getattr(_local, "stack", None)
    if stack:
        injector, counters = stack[-1]
        injector.check(point, target, counters)
