"""Per-XAM circuit breakers: health state for access modules.

Each materialized access module (view / index / storage relation in the
catalog) gets a tiny state machine:

* **closed** — healthy; reads flow normally.
* **open** — the module failed ``failure_threshold`` consecutive times;
  the optimizer excludes it from rewriting ranking until a recovery
  window elapses (no point re-reading a corrupt structure on every
  query).
* **half-open** — the recovery window elapsed; the next query is allowed
  to probe the module.  Success closes the breaker, failure re-opens it
  and restarts the window.

The breaker never *changes answers*: the rewriting search only ever picks
among S-equivalent plans, so excluding an open module merely re-routes
the same query — the availability face of physical data independence.

The board lives on the :class:`~repro.core.uload.Database`, alongside the
catalog whose entries it tracks; ``Database.health()``, the REPL's
``.health`` command, and ``repro serve`` render it.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Callable, Optional

__all__ = ["CircuitBreaker", "BreakerBoard", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """The closed → open → half-open state machine of one access module.

    Not internally locked: the owning :class:`BreakerBoard` serializes
    access.  ``clock`` is injectable so tests drive the recovery window
    deterministically.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self._clock = clock
        self._failures = 0
        self._successes = 0
        self._opened_at: Optional[float] = None
        self.last_error: Optional[str] = None

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return CLOSED
        if self._clock() - self._opened_at >= self.recovery_timeout:
            return HALF_OPEN
        return OPEN

    @property
    def failures(self) -> int:
        return self._failures

    def allow(self) -> bool:
        """Whether a read of this module may proceed (closed, or the
        half-open recovery probe)."""
        return self.state != OPEN

    def record_failure(self, error: Optional[str] = None) -> str:
        """Count a failure; returns the resulting state.  A failure in
        half-open re-opens immediately (the probe failed)."""
        self._failures += 1
        if error is not None:
            self.last_error = error
        if self._opened_at is not None or self._failures >= self.failure_threshold:
            self._opened_at = self._clock()
        return self.state

    def record_success(self) -> str:
        """Count a success; a half-open probe succeeding closes the
        breaker and resets the failure count."""
        self._successes += 1
        if self._opened_at is not None and self.state != OPEN:
            self._opened_at = None
            self._failures = 0
        elif self._opened_at is None:
            self._failures = 0
        return self.state

    def force_open(self, error: Optional[str] = None) -> str:
        """Trip the breaker open immediately, regardless of the failure
        count — the chaos lever for rehearsing module loss (a half-open
        probe can still close it after the recovery window)."""
        self._failures = max(self._failures, self.failure_threshold)
        self._opened_at = self._clock()
        if error is not None:
            self.last_error = error
        return self.state

    def render(self) -> str:
        state = self.state
        text = f"{state} (failures={self._failures}"
        if state == OPEN and self._opened_at is not None:
            remaining = self.recovery_timeout - (self._clock() - self._opened_at)
            text += f", probe in {max(remaining, 0.0):.1f}s"
        if self.last_error:
            text += f", last: {self.last_error}"
        return text + ")"


class BreakerBoard:
    """Thread-safe registry of breakers, one per access module name.

    Breakers are created lazily on the first *failure* — a healthy
    catalog keeps the board empty, so rendering it answers "what is
    broken?" rather than listing everything.
    """

    #: numeric encoding of breaker states for the ``breaker.state`` gauge
    STATE_VALUES = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()
        self._registry = None

    def register_metrics(self, registry) -> None:
        """Publish the board into a
        :class:`~repro.engine.metrics.MetricsRegistry`: per-module
        failure/success counters are bumped inline (they are events, not
        state), while the state gauges are refreshed by a scrape-time
        collector (state is a function of the clock — half-open emerges
        from elapsed time, not from any recorded event)."""
        self._registry = registry
        registry.counter(
            "breaker.failures", "access-module failures recorded", ("module",)
        )
        registry.counter(
            "breaker.successes", "access-module successes recorded", ("module",)
        )
        registry.gauge(
            "breaker.open_modules", "access modules currently circuit-open"
        )
        registry.gauge(
            "breaker.state",
            "breaker state per module (0=closed 1=half-open 2=open)",
            ("module",),
        )

        self_ref = weakref.ref(self)

        def collect(reg) -> None:
            board = self_ref()
            if board is None:  # don't pin dead boards to the registry
                reg.unregister_collector(collect)
                return
            states = board.states()
            reg.set_gauge(
                "breaker.open_modules",
                sum(1 for state in states.values() if state == OPEN),
            )
            for name, state in states.items():
                reg.set_gauge(
                    "breaker.state", board.STATE_VALUES[state], module=name
                )

        registry.register_collector(collect)

    def breaker(self, name: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = self._breakers[name] = CircuitBreaker(
                    self.failure_threshold, self.recovery_timeout, self._clock
                )
            return breaker

    def record_failure(self, name: str, error: Optional[str] = None) -> str:
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = self._breakers[name] = CircuitBreaker(
                    self.failure_threshold, self.recovery_timeout, self._clock
                )
            state = breaker.record_failure(error)
        if self._registry is not None:
            self._registry.inc("breaker.failures", module=name)
        return state

    def record_success(self, name: str) -> None:
        """Successes only touch modules already being tracked (no entry =
        nothing to recover)."""
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                return
            breaker.record_success()
        if self._registry is not None:
            self._registry.inc("breaker.successes", module=name)

    def force_open(self, name: str, error: Optional[str] = None) -> str:
        """Trip one module's breaker open immediately (creating it if the
        module never failed before) — the chaos hook the sharded CI lane
        uses to rehearse losing a shard's access modules."""
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = self._breakers[name] = CircuitBreaker(
                    self.failure_threshold, self.recovery_timeout, self._clock
                )
            return breaker.force_open(error or "forced open")

    def state(self, name: str) -> str:
        with self._lock:
            breaker = self._breakers.get(name)
            return breaker.state if breaker is not None else CLOSED

    def allows(self, name: str) -> bool:
        with self._lock:
            breaker = self._breakers.get(name)
            return breaker.allow() if breaker is not None else True

    def unavailable_names(self) -> set[str]:
        """Modules whose circuit is open (excluded from rewriting
        ranking).  Half-open modules are *not* listed: the next query is
        their recovery probe."""
        with self._lock:
            return {
                name
                for name, breaker in self._breakers.items()
                if not breaker.allow()
            }

    def states(self) -> dict[str, str]:
        with self._lock:
            return {name: breaker.state for name, breaker in self._breakers.items()}

    def render(self) -> str:
        with self._lock:
            if not self._breakers:
                return "all access modules healthy (no failures recorded)"
            lines = []
            for name in sorted(self._breakers):
                lines.append(f"{name}: {self._breakers[name].render()}")
            return "\n".join(lines)

    def __len__(self) -> int:
        with self._lock:
            return len(self._breakers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BreakerBoard {self.states()!r}>"
