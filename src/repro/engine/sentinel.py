"""The live plan-regression sentinel.

The optimizer's choice among S-equivalent rewritings (§4) is only as good
as the statistics it ranks them with — and in production both drift: the
catalog changes, circuit breakers take modules out of the race, the
summary's cardinalities go stale against a mutating document set.  The
sentinel watches two symptoms of that drift on the live query stream:

* **plan flips** — the same normalized query re-prepared to a different
  plan fingerprint.  Some flips are intended (a view was added; a breaker
  opened); all of them deserve a record, a counter and a trace event,
  because a silent flip is how a production regression begins.
* **cardinality misestimates** — a pattern whose summary estimate is off
  from the observed tuple count by more than a configurable factor.  One
  misestimate is noise; ``refresh_after`` misestimates on the same query
  are a signal the statistics are stale, so the sentinel triggers a
  statistics refresh through the callback the query service installs
  (which also bumps the catalog version, invalidating every plan ranked
  under the stale numbers — the loop from telemetry back to planner
  correctness).

Findings are kept in a bounded ring and served by the ``/regressions``
HTTP route; counters (``planner.plan_flip``, ``planner.misestimate``,
``planner.stats_refresh``) land in the metrics registry, and every
detection is stamped into the owning query's trace as an event span.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["SentinelConfig", "RegressionFinding", "PlanRegressionSentinel"]


@dataclass(frozen=True)
class SentinelConfig:
    """Thresholds of the sentinel, gathered in one place.

    ``misestimate_factor`` is the max tolerated ratio between estimated
    and actual pattern cardinality (both smoothed by +1, so empty results
    and unknown-side zeros do not divide by zero).  ``refresh_after``
    consecutive misestimating executions of the same query trigger the
    statistics-refresh callback; ``capacity`` bounds the finding ring.
    """

    misestimate_factor: float = 10.0
    refresh_after: int = 3
    capacity: int = 256

    def as_dict(self) -> dict:
        return {
            "misestimate_factor": self.misestimate_factor,
            "refresh_after": self.refresh_after,
            "capacity": self.capacity,
        }


@dataclass(frozen=True)
class RegressionFinding:
    """One detection: a plan flip, a misestimate, or a triggered refresh."""

    kind: str  # "plan_flip" | "misestimate" | "stats_refresh"
    query: str
    detail: str
    ts: float = field(default_factory=time.time)
    trace_id: Optional[str] = None
    data: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "query": self.query,
            "detail": self.detail,
            "ts": self.ts,
        }
        if self.trace_id:
            out["trace_id"] = self.trace_id
        if self.data:
            out["data"] = dict(self.data)
        return out

    def summary(self) -> str:
        trace = f" trace={self.trace_id}" if self.trace_id else ""
        return f"[{self.kind}]{trace} {self.query}: {self.detail}"


class PlanRegressionSentinel:
    """Watches executed queries for plan flips and misestimates.

    One instance per :class:`~repro.core.service.QueryService`; `observe`
    is called once per successful execution, on the worker thread, while
    the query's trace is still open (so event spans land in the tree).
    Counters go straight to the registry rather than through
    ``ctx.bump`` — the per-query ``result.counters`` snapshot is taken
    before the sentinel runs, and the registry-equals-sum-of-results
    reconciliation invariant must stay exact.
    """

    def __init__(
        self,
        config: Optional[SentinelConfig] = None,
        registry=None,
        on_refresh: Optional[Callable[[], None]] = None,
    ) -> None:
        self.config = config or SentinelConfig()
        self._registry = registry
        self._on_refresh = on_refresh
        self._lock = threading.Lock()
        #: normalized query → last observed plan fingerprint
        self._fingerprints: dict[str, str] = {}
        #: normalized query → consecutive misestimating executions
        self._miss_streaks: dict[str, int] = {}
        self._findings: deque[RegressionFinding] = deque(
            maxlen=self.config.capacity
        )
        self._plan_flips = 0
        self._misestimates = 0
        self._stats_refreshes = 0

    # -- observation ---------------------------------------------------------

    def observe(self, query: str, result, ctx=None) -> list[RegressionFinding]:
        """Check one successful execution; returns the new findings."""
        findings: list[RegressionFinding] = []
        trace_id = getattr(result, "trace_id", None)
        fingerprint = getattr(result, "plan_fingerprint", None)

        flip_from: Optional[str] = None
        if fingerprint:
            with self._lock:
                previous = self._fingerprints.get(query)
                self._fingerprints[query] = fingerprint
            if previous is not None and previous != fingerprint:
                flip_from = previous
        if flip_from is not None:
            findings.append(
                RegressionFinding(
                    kind="plan_flip",
                    query=query,
                    detail=f"plan fingerprint {flip_from} -> {fingerprint}",
                    trace_id=trace_id,
                    data={"from": flip_from, "to": fingerprint},
                )
            )
            self._count("planner.plan_flip")
            if ctx is not None:
                ctx.event(
                    "planner.plan_flip", before=flip_from, after=fingerprint
                )

        missed = False
        for resolution in getattr(result, "resolutions", ()):
            est = resolution.estimated_cardinality
            actual = resolution.actual_cardinality
            if est is None or actual is None:
                continue
            factor = max(
                (est + 1.0) / (actual + 1.0), (actual + 1.0) / (est + 1.0)
            )
            if factor <= self.config.misestimate_factor:
                continue
            missed = True
            findings.append(
                RegressionFinding(
                    kind="misestimate",
                    query=query,
                    detail=(
                        f"pattern {resolution.pattern.to_text()} estimated "
                        f"{est:.1f} rows, observed {actual} "
                        f"({factor:.1f}x off)"
                    ),
                    trace_id=trace_id,
                    data={
                        "pattern": resolution.pattern.to_text(),
                        "est": est,
                        "actual": actual,
                        "factor": round(factor, 2),
                    },
                )
            )
            self._count("planner.misestimate")
            if ctx is not None:
                ctx.event(
                    "planner.misestimate",
                    est=round(est, 1),
                    actual=actual,
                )

        refresh = False
        with self._lock:
            if missed:
                streak = self._miss_streaks.get(query, 0) + 1
                self._miss_streaks[query] = streak
                if (
                    streak >= self.config.refresh_after
                    and self._on_refresh is not None
                ):
                    refresh = True
                    # statistics are global: a refresh resets every streak
                    self._miss_streaks.clear()
            else:
                self._miss_streaks.pop(query, None)
        if refresh:
            findings.append(
                RegressionFinding(
                    kind="stats_refresh",
                    query=query,
                    detail=(
                        f"{self.config.refresh_after} consecutive "
                        "misestimating executions; refreshing statistics"
                    ),
                    trace_id=trace_id,
                )
            )
            self._count("planner.stats_refresh")
            if ctx is not None:
                ctx.event("planner.stats_refresh")
            # outside the lock: the callback takes the service's mutate
            # lock and purges the plan cache
            self._on_refresh()

        if findings:
            with self._lock:
                self._findings.extend(findings)
                for finding in findings:
                    if finding.kind == "plan_flip":
                        self._plan_flips += 1
                    elif finding.kind == "misestimate":
                        self._misestimates += 1
                    else:
                        self._stats_refreshes += 1
        return findings

    def _count(self, name: str) -> None:
        if self._registry is not None:
            self._registry.inc(name)

    # -- introspection -------------------------------------------------------

    def findings(self, kind: Optional[str] = None) -> list[RegressionFinding]:
        with self._lock:
            found = list(self._findings)
        if kind is not None:
            found = [finding for finding in found if finding.kind == kind]
        return found

    @property
    def plan_flips(self) -> int:
        with self._lock:
            return self._plan_flips

    @property
    def misestimates(self) -> int:
        with self._lock:
            return self._misestimates

    @property
    def stats_refreshes(self) -> int:
        with self._lock:
            return self._stats_refreshes

    def fingerprint_of(self, query: str) -> Optional[str]:
        """Last observed fingerprint of a normalized query."""
        with self._lock:
            return self._fingerprints.get(query)

    def as_dict(self) -> dict:
        with self._lock:
            findings = [finding.as_dict() for finding in self._findings]
            return {
                "plan_flips": self._plan_flips,
                "misestimates": self._misestimates,
                "stats_refreshes": self._stats_refreshes,
                "tracked_queries": len(self._fingerprints),
                "config": self.config.as_dict(),
                "findings": findings,
            }

    def render(self) -> str:
        snapshot = self.as_dict()
        lines = [
            f"plan flips: {snapshot['plan_flips']}  "
            f"misestimates: {snapshot['misestimates']}  "
            f"statistics refreshes: {snapshot['stats_refreshes']}  "
            f"tracked queries: {snapshot['tracked_queries']}"
        ]
        with self._lock:
            entries = list(self._findings)
        lines.extend(finding.summary() for finding in entries)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PlanRegressionSentinel flips={self.plan_flips} "
            f"misestimates={self.misestimates}>"
        )
