"""Structural indexes (thesis §2.3.3): XISS-style indexes and the
pre/post plane of XPath Accelerator.

XISS (Figure 2.15) maintains:

* an **element index** — tag → structural IDs (the ``getElementsByTagName``
  access path);
* an **attribute index** — attribute name → (ID, value);
* a **structural index** — given an element ID, its parent and children
  (the only navigational access of node stores);
* a **name dictionary** — which the thesis notes XAMs deliberately do
  *not* model (XAMs assign IDs to nodes, not to values); we expose it as a
  plain Python mapping outside the catalog, matching that observation;
* a **value index** — value string → node IDs (same remark applies).

:class:`PrePostPlane` implements the XPath-Accelerator view: all nodes as
(pre, post) points with window queries for the four quarters of Example
1.2.1 (ancestors / descendants / preceding / following).
"""

from __future__ import annotations

import bisect
from typing import Optional

from ..algebra.model import NestedTuple
from ..engine import faults
from ..engine.storage import Store
from ..storage.catalog import Catalog
from ..xmldata.ids import STRUCTURAL, StructuralID, id_of
from ..xmldata.node import ATTRIBUTE, ELEMENT, Document
from .fulltext import tokenize

__all__ = ["build_xiss_indexes", "PrePostPlane"]


def build_xiss_indexes(doc: Document, store: Store, catalog: Catalog) -> dict:
    """Build the XISS index family; returns the out-of-catalog dictionaries
    (name index, value index) alongside the registered relation names."""
    element_rows: dict[str, list[NestedTuple]] = {}
    attribute_rows: dict[str, list[NestedTuple]] = {}
    structure_rows = []
    name_dictionary: dict[str, int] = {}
    value_dictionary: dict[str, list[StructuralID]] = {}

    for node in doc.nodes():
        if node.kind == ELEMENT:
            name_dictionary.setdefault(node.label, len(name_dictionary) + 1)
            element_rows.setdefault(node.label, []).append(
                NestedTuple({"ID": id_of(node, STRUCTURAL)})
            )
            parent = node.parent
            structure_rows.append(
                NestedTuple(
                    {
                        "ID": id_of(node, STRUCTURAL),
                        "parentID": (
                            id_of(parent, STRUCTURAL)
                            if parent is not None and parent.kind == ELEMENT
                            else None
                        ),
                    }
                )
            )
            if node.value:
                value_dictionary.setdefault(node.value, []).append(
                    id_of(node, STRUCTURAL)  # type: ignore[arg-type]
                )
        elif node.kind == ATTRIBUTE:
            name_dictionary.setdefault(node.label, len(name_dictionary) + 1)
            attribute_rows.setdefault(node.label, []).append(
                NestedTuple(
                    {"ID": id_of(node, STRUCTURAL), "value": node.text}
                )
            )

    relations = []
    for tag, rows in sorted(element_rows.items()):
        relation = f"xiss_elem_{tag}"
        store.add(relation, rows, order="ID")
        catalog.register(relation, f"//{tag}[id:s]", relation=relation, kind="index")
        relations.append(relation)
    for label, rows in sorted(attribute_rows.items()):
        relation = f"xiss_attr_{label.lstrip('@')}"
        store.add(relation, rows, order="ID")
        catalog.register(
            relation, f"//*{{/{label}[id:s, val]}}", relation=relation, kind="index"
        )
        relations.append(relation)
    store.add("xiss_structure", structure_rows, order="ID")
    # Structural index XAM (Figure 2.15(c)): parent→child access requires
    # knowing one side's ID.
    catalog.register(
        "xiss_structure",
        "//*[id:s!]{/*[id:s]}",
        relation="xiss_structure",
        kind="index",
    )
    relations.append("xiss_structure")
    return {
        "relations": relations,
        "name_index": name_dictionary,
        "value_index": value_dictionary,
    }


class PrePostPlane:
    """The XPath-Accelerator pre/post plane (Example 1.2.1).

    Nodes are (pre, post) points; the four structural relationships of a
    reference node correspond to the four quarters of the plane, answered
    with window scans over a pre-sorted array.
    """

    def __init__(self, doc: Document, elements_only: bool = True):
        nodes = doc.elements() if elements_only else doc.nodes()
        self._points: list[tuple[int, int, int, str]] = sorted(
            (node.pre, node.post, node.depth, node.label)  # type: ignore[misc]
            for node in nodes
        )
        self._pres = [point[0] for point in self._points]

    def __len__(self) -> int:
        return len(self._points)

    def _window(self, low_pre: int, high_pre: int):
        faults.check(faults.INDEX_STRUCTURAL, "pre/post plane")
        start = bisect.bisect_left(self._pres, low_pre)
        end = bisect.bisect_right(self._pres, high_pre)
        return self._points[start:end]

    def descendants(self, ref: StructuralID, label: Optional[str] = None):
        """Lower-right quarter under the node: pre > ref.pre, post < ref.post."""
        return [
            StructuralID(pre, post, depth)
            for pre, post, depth, node_label in self._window(ref.pre + 1, 10**12)
            if post < ref.post and (label is None or node_label == label)
        ]

    def ancestors(self, ref: StructuralID, label: Optional[str] = None):
        """Top-left quarter: pre < ref.pre, post > ref.post."""
        return [
            StructuralID(pre, post, depth)
            for pre, post, depth, node_label in self._window(0, ref.pre - 1)
            if post > ref.post and (label is None or node_label == label)
        ]

    def preceding(self, ref: StructuralID):
        """Bottom-left quarter: entered *and* exited before the node
        (with separate pre/post counters, ``pre < ref.pre ∧ post <
        ref.post`` excludes ancestors, which exit later)."""
        return [
            StructuralID(pre, post, depth)
            for pre, post, depth, _label in self._window(0, ref.pre - 1)
            if post < ref.post
        ]

    def following(self, ref: StructuralID):
        """Top-right quarter: entered and exited after the node (excludes
        descendants, which exit before)."""
        return [
            StructuralID(pre, post, depth)
            for pre, post, depth, _label in self._window(ref.pre + 1, 10**12)
            if post > ref.post
        ]

    def children(self, ref: StructuralID, label: Optional[str] = None):
        return [
            sid
            for sid in self.descendants(ref, label)
            if sid.depth == ref.depth + 1
        ]


def build_value_word_statistics(doc: Document) -> dict[str, int]:
    """Word frequency over all element values (useful for workload-driven
    index selection demos)."""
    counts: dict[str, int] = {}
    for node in doc.elements():
        if node.value:
            for word in tokenize(node.value):
                counts[word] = counts.get(word, 0) + 1
    return counts
