"""Composite-key value indexes (thesis §2.1.2, the ``booksByYearTitle``
example).

A value index associates, to a tuple of values found at chosen paths under
an element, the identifiers of the qualifying elements.  As a XAM it is the
element pattern with the key nodes' value specifications marked required
(``R``) — exactly how §2.2.2 models indexes, and how the optimizer learns
"what is the index key, and what is the lookup result" to build QEP₁₁.
"""

from __future__ import annotations

from typing import Sequence

from ..core.xam import CHILD, DESCENDANT, JOIN, Pattern, PatternNode
from ..engine.storage import Store
from ..storage.catalog import Catalog, CatalogEntry
from ..storage.materialize import materialize_view
from ..xmldata.node import Document

__all__ = ["build_value_index", "value_index_pattern"]


def value_index_pattern(
    element_tag: str,
    key_paths: Sequence[str],
    id_kind: str = "s",
) -> Pattern:
    """The restricted XAM for an index on ``element_tag`` keyed by the
    values reached through ``key_paths`` (child-step paths such as
    ``"year"`` or ``"name/last"``)."""
    pattern = Pattern()
    element = PatternNode(tag=element_tag, store_id=id_kind)
    pattern.root.add_child(element, DESCENDANT, JOIN)
    for path in key_paths:
        anchor = element
        steps = [step for step in path.split("/") if step]
        for position, step in enumerate(steps):
            last = position == len(steps) - 1
            node = PatternNode(tag=step)
            if last:
                node.store_value = True
                node.value_required = True
            anchor = anchor.add_child(node, CHILD, JOIN)
    return pattern.finalize()


def build_value_index(
    name: str,
    doc: Document,
    store: Store,
    catalog: Catalog,
    element_tag: str,
    key_paths: Sequence[str],
    id_kind: str = "s",
) -> CatalogEntry:
    """Materialize the index relation (key values → element IDs) and
    register its restricted XAM; lookups run through
    :func:`repro.storage.materialize.index_lookup`."""
    pattern = value_index_pattern(element_tag, key_paths, id_kind)
    return materialize_view(name, pattern, doc, store, catalog, kind="index")
