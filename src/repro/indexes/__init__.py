"""XML index models: value indexes, full-text, structural (XISS, plane)."""

from .value_index import build_value_index, value_index_pattern
from .fulltext import (
    build_fulltext_index,
    contains_word,
    fulltext_lookup,
    tokenize,
    word_index_tree,
)
from .structural import PrePostPlane, build_xiss_indexes

__all__ = [
    "build_value_index",
    "value_index_pattern",
    "build_fulltext_index",
    "contains_word",
    "fulltext_lookup",
    "tokenize",
    "word_index_tree",
    "PrePostPlane",
    "build_xiss_indexes",
]
