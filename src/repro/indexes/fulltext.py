"""Full-text indexes (thesis §2.1.2): IndexFabric-style inverted files.

``build_fulltext_index`` builds a word → element-ID inverted index scoped
to a parent-child path (the IndexFabric design indexes word occurrences
*within precise parent-child paths*; the Natix-style variant indexes words
anywhere, which ``scope_path=None`` gives).  Lookups answer ``ftcontains``
queries as in QEP₁₃: one index probe instead of a ``contains()`` scan over
every text value (QEP₁₂).
"""

from __future__ import annotations

import re
from typing import Optional

from ..algebra.model import NestedTuple
from ..engine import faults
from ..engine.btree import BPlusTree
from ..engine.storage import Store
from ..storage.catalog import Catalog, CatalogEntry
from ..xmldata.ids import STRUCTURAL, id_of
from ..xmldata.node import Document, XMLNode

__all__ = ["tokenize", "contains_word", "build_fulltext_index", "fulltext_lookup"]

_WORD = re.compile(r"[A-Za-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lowercased alphanumeric word stream."""
    return [match.group(0).lower() for match in _WORD.finditer(text)]


def contains_word(text: Optional[str], word: str) -> bool:
    """The ``contains(t, w)`` function of QEP₁₂ — direct string matching,
    the alternative the index is meant to beat."""
    if text is None:
        return False
    return word.lower() in tokenize(text)


def _scope_matches(node: XMLNode, steps: list[str]) -> bool:
    """Whether the node's rooted path ends with the ``/``-separated steps
    (child-path scoping, e.g. ``bib/book/title``)."""
    path = node.rooted_path()
    if len(steps) > len(path):
        return False
    return list(path[len(path) - len(steps):]) == steps


def build_fulltext_index(
    name: str,
    doc: Document,
    store: Store,
    catalog: Catalog,
    scope_path: Optional[str] = None,
) -> CatalogEntry:
    """Build ``name(word, ID)`` over the values of scoped elements.

    ``scope_path`` like ``"book/title"`` restricts indexed elements to
    those whose rooted path ends with these steps; ``None`` indexes every
    element with a value (the Natix-FTI behavior).
    """
    steps = [s for s in scope_path.split("/") if s] if scope_path else []
    rows = []
    for node in doc.elements():
        if steps and not _scope_matches(node, steps):
            continue
        value = node.value
        if not value:
            continue
        for word in sorted(set(tokenize(value))):
            rows.append(
                NestedTuple({"word": word, "ID": id_of(node, STRUCTURAL)})
            )
    relation = store.add(name, rows)
    relation.build_index(["word"])
    target = steps[-1] if steps else "*"
    pattern_text = f"//{target}[id:s, val!]"
    entry = catalog.register(name, pattern_text, relation=name, kind="index")
    entry.metadata["index_key"] = ["word"]
    entry.metadata["fulltext_scope"] = scope_path
    return entry


def fulltext_lookup(entry: CatalogEntry, store: Store, word: str) -> list[NestedTuple]:
    """``idxLookup(fti, word)`` — the access path of QEP₁₃."""
    faults.check(faults.INDEX_FULLTEXT, entry.name)
    relation = store[entry.relation]
    return relation.lookup(["word"], [word.lower()])


def word_index_tree(doc: Document, scope_path: Optional[str] = None) -> BPlusTree:
    """A standalone Patricia-trie stand-in: B+-tree word → node IDs.

    IndexFabric's layered Patricia tries give prefix-compressed exact-word
    lookups; a B+ tree over the words offers the same access interface
    (exact and range/prefix probes) which is what the plan shapes need.
    """
    steps = [s for s in scope_path.split("/") if s] if scope_path else []
    tree = BPlusTree()
    for node in doc.elements():
        if steps and not _scope_matches(node, steps):
            continue
        value = node.value
        if not value:
            continue
        for word in set(tokenize(value)):
            tree.insert((word,), id_of(node, STRUCTURAL))
    return tree
