"""Plan inspection helpers.

The storage-model study of §2.1 compares *plan shapes* (QEP₁ … QEP₁₃):
how many joins, which access paths, how deep.  These helpers extract those
shape statistics from logical plans so benchmarks can assert, e.g., that
the unfragmented store answers ``//book//section`` with fewer joins than
the path-partitioned store (QEP₉ vs QEP₈).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator, Optional

from .operators import Operator, Scan, StructuralJoin, ValueJoin

__all__ = [
    "count_by_type",
    "plan_shape",
    "scans_used",
    "walk",
    "annotate_cardinalities",
    "cardinality_profile",
]


def count_by_type(plan: Operator) -> Counter:
    """Multiset of operator class names appearing in the plan."""
    counts: Counter = Counter()
    for op in plan.walk():
        counts[type(op).__name__] += 1
    return counts


def walk(plan: Operator) -> Iterator[Operator]:
    """Pre-order traversal (delegates to the uniform ``Operator.walk``)."""
    return plan.walk()


def annotate_cardinalities(plan: Operator, ctx) -> dict[int, Optional[float]]:
    """Estimated output cardinality of every operator in the plan, keyed
    by node identity (``id(op)``) — the walk the cost-based compiler and
    EXPLAIN share.  ``ctx`` is an
    :class:`~repro.engine.context.ExecutionContext`.
    """
    return {id(op): ctx.estimate(op) for op in plan.walk()}


def cardinality_profile(plan: Operator, ctx) -> list[tuple[str, Optional[float]]]:
    """``(label, estimate)`` pairs in pre-order — a printable summary of
    what the estimator believes about each plan step."""
    return [(op.label(), ctx.estimate(op)) for op in plan.walk()]


def scans_used(plan: Operator) -> list[str]:
    """Names of base relations read by the plan, in leaf order."""
    return [leaf.name for leaf in plan.leaves() if isinstance(leaf, Scan)]


def plan_shape(plan: Operator) -> dict[str, int]:
    """Summary statistics used by the QEP-comparison benchmarks."""
    counts = count_by_type(plan)
    structural = counts.get("StructuralJoin", 0)
    value = counts.get("ValueJoin", 0)
    return {
        "operators": plan.operator_count(),
        "joins": plan.join_count(),
        "structural_joins": structural,
        "value_joins": value,
        "scans": counts.get("Scan", 0),
        "depth": _depth(plan),
    }


def _depth(plan: Operator) -> int:
    if not plan.children:
        return 1
    return 1 + max(_depth(child) for child in plan.children)
