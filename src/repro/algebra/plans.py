"""Plan inspection helpers.

The storage-model study of §2.1 compares *plan shapes* (QEP₁ … QEP₁₃):
how many joins, which access paths, how deep.  These helpers extract those
shape statistics from logical plans so benchmarks can assert, e.g., that
the unfragmented store answers ``//book//section`` with fewer joins than
the path-partitioned store (QEP₉ vs QEP₈).
"""

from __future__ import annotations

from collections import Counter

from .operators import Operator, Scan, StructuralJoin, ValueJoin

__all__ = ["count_by_type", "plan_shape", "scans_used"]


def count_by_type(plan: Operator) -> Counter:
    """Multiset of operator class names appearing in the plan."""
    counts: Counter = Counter()

    def visit(op: Operator) -> None:
        counts[type(op).__name__] += 1
        for child in op.children:
            visit(child)

    visit(plan)
    return counts


def scans_used(plan: Operator) -> list[str]:
    """Names of base relations read by the plan, in leaf order."""
    return [leaf.name for leaf in plan.leaves() if isinstance(leaf, Scan)]


def plan_shape(plan: Operator) -> dict[str, int]:
    """Summary statistics used by the QEP-comparison benchmarks."""
    counts = count_by_type(plan)
    structural = counts.get("StructuralJoin", 0)
    value = counts.get("ValueJoin", 0)
    return {
        "operators": plan.operator_count(),
        "joins": plan.join_count(),
        "structural_joins": structural,
        "value_joins": value,
        "scans": counts.get("Scan", 0),
        "depth": _depth(plan),
    }


def _depth(plan: Operator) -> int:
    if not plan.children:
        return 1
    return 1 + max(_depth(child) for child in plan.children)
