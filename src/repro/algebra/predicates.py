"""Predicates over nested tuples for selections and joins (§1.2.2).

Predicates have the form ``A_i θ c`` or ``A_i θ A_j`` where θ ranges over
``=, !=, <, <=, >, >=`` plus the structural comparators ``≺`` (parent) and
``≺≺`` (ancestor), the latter two applying only to identifier values.

Attribute references are dotted paths; when a path crosses a nested
collection the predicate takes the *existential* semantics of the ``map``
meta-operator (Example 1.2.2): it holds when some reachable value pair
satisfies the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..xmldata.ids import is_ancestor_id, is_parent_id
from .model import NestedTuple

__all__ = [
    "Predicate",
    "Compare",
    "Const",
    "Attr",
    "And",
    "Or",
    "Not",
    "IsNull",
    "NotNull",
    "PARENT",
    "ANCESTOR",
]

PARENT = "parent"  # ≺
ANCESTOR = "ancestor"  # ≺≺

_VALUE_OPS = {"=", "!=", "<", "<=", ">", ">="}


@dataclass(frozen=True)
class Const:
    """A constant operand."""

    value: Any


@dataclass(frozen=True)
class Attr:
    """An attribute operand: a dotted path, optionally into the right-hand
    input of a join (``side`` is 0 for left/unary input, 1 for right)."""

    path: str
    side: int = 0


class Predicate:
    """Base class; subclasses implement :meth:`holds`."""

    def holds(
        self, left: NestedTuple, right: Optional[NestedTuple] = None
    ) -> bool:
        raise NotImplementedError

    def __call__(
        self, left: NestedTuple, right: Optional[NestedTuple] = None
    ) -> bool:
        return self.holds(left, right)


def _operand_values(operand, left: NestedTuple, right: Optional[NestedTuple]):
    if isinstance(operand, Const):
        yield operand.value
        return
    source = left if operand.side == 0 else right
    if source is None:
        raise ValueError("predicate references the right input of a unary operator")
    yield from source.iter_path(operand.path)


def _coerce_pair(a: Any, b: Any) -> tuple[Any, Any]:
    """XQuery-style dynamic casting: when a string meets a number, try the
    string as a number."""
    if isinstance(a, str) and isinstance(b, (int, float)):
        try:
            return float(a.strip()), float(b)
        except ValueError:
            return a, b
    if isinstance(b, str) and isinstance(a, (int, float)):
        try:
            return float(a), float(b.strip())
        except ValueError:
            return a, b
    return a, b


def _compare_values(op: str, a: Any, b: Any) -> bool:
    if op == PARENT:
        return a is not None and b is not None and is_parent_id(a, b)
    if op == ANCESTOR:
        return a is not None and b is not None and is_ancestor_id(a, b)
    if a is None or b is None:
        # ⊥ compares like SQL NULL: no value comparison holds.
        return False
    a, b = _coerce_pair(a, b)
    try:
        if op == "=":
            return a == b
        if op == "!=":
            return a != b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
    except TypeError:
        return False
    raise ValueError(f"unknown comparison operator {op!r}")


@dataclass(frozen=True)
class Compare(Predicate):
    left: Attr
    op: str
    right: Any  # Attr or Const

    def __post_init__(self) -> None:
        if self.op not in _VALUE_OPS and self.op not in (PARENT, ANCESTOR):
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def holds(self, left: NestedTuple, right: Optional[NestedTuple] = None) -> bool:
        for a in _operand_values(self.left, left, right):
            for b in _operand_values(self.right, left, right):
                if _compare_values(self.op, a, b):
                    return True
        return False

    def __repr__(self) -> str:
        def show(operand):
            if isinstance(operand, Const):
                return repr(operand.value)
            prefix = "" if operand.side == 0 else "right."
            return prefix + operand.path

        symbol = {"parent": "≺", "ancestor": "≺≺"}.get(self.op, self.op)
        return f"{show(self.left)} {symbol} {show(self.right)}"


@dataclass(frozen=True)
class And(Predicate):
    parts: tuple[Predicate, ...]

    def holds(self, left: NestedTuple, right: Optional[NestedTuple] = None) -> bool:
        return all(part.holds(left, right) for part in self.parts)

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    parts: tuple[Predicate, ...]

    def holds(self, left: NestedTuple, right: Optional[NestedTuple] = None) -> bool:
        return any(part.holds(left, right) for part in self.parts)

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    part: Predicate

    def holds(self, left: NestedTuple, right: Optional[NestedTuple] = None) -> bool:
        return not self.part.holds(left, right)

    def __repr__(self) -> str:
        return f"¬{self.part!r}"


@dataclass(frozen=True)
class IsNull(Predicate):
    """``A = ⊥`` — the attribute has no non-null reachable value (used by
    the compensating selections of §3.1)."""

    attr: Attr

    def holds(self, left: NestedTuple, right: Optional[NestedTuple] = None) -> bool:
        return all(
            value is None for value in _operand_values(self.attr, left, right)
        ) or not any(True for _ in _operand_values(self.attr, left, right))

    def __repr__(self) -> str:
        return f"{self.attr.path} = ⊥"


@dataclass(frozen=True)
class NotNull(Predicate):
    attr: Attr

    def holds(self, left: NestedTuple, right: Optional[NestedTuple] = None) -> bool:
        return any(
            value is not None for value in _operand_values(self.attr, left, right)
        )

    def __repr__(self) -> str:
        return f"{self.attr.path} ≠ ⊥"
