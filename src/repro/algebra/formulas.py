"""Value-predicate formulas over one free variable (thesis §4.1).

Decorated patterns annotate nodes with a formula ``φ(v)`` built from atoms
``v = c``, ``v < c``, ``v > c`` combined with ∧ and ∨.  The thesis observes
that over a totally ordered domain any such formula has a compact normal
form — a union of disjoint intervals — on which negation, conjunction,
disjunction and implication are easy to compute (§4.1).  This module is
that normal form.

The domain mixes strings and numbers; we totally order values by
``(type rank, value)`` so heterogeneous constants never raise.  The domain
is treated as *dense*: implication is interval inclusion.  Over genuinely
discrete domains this is sound (never claims an implication that does not
hold) but incomplete in corner cases like ``3 < v < 5  ⇒  v = 4`` over
integers, which the thesis's "enumerable domain" remark would catch; no
workload in the evaluation depends on that case.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

__all__ = ["Formula", "TRUE", "FALSE", "eq", "lt", "gt", "le", "ge", "between"]


@functools.total_ordering
class _Bound:
    """A domain value wrapper with a total order across value types."""

    __slots__ = ("rank", "value")

    _RANKS = {bool: 0, int: 1, float: 1, str: 2}

    def __init__(self, value: Any):
        self.value = value
        try:
            self.rank = self._RANKS[type(value)]
        except KeyError:
            raise TypeError(f"unorderable formula constant: {value!r}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Bound):
            return NotImplemented
        return self.rank == other.rank and self.value == other.value

    def __lt__(self, other: "_Bound") -> bool:
        if self.rank != other.rank:
            return self.rank < other.rank
        return self.value < other.value

    def __hash__(self) -> int:
        return hash((self.rank, self.value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Bound({self.value!r})"


class _Infinity:
    """±∞ sentinels."""

    __slots__ = ("sign",)

    def __init__(self, sign: int):
        self.sign = sign

    def __repr__(self) -> str:  # pragma: no cover
        return "+inf" if self.sign > 0 else "-inf"


_NEG_INF = _Infinity(-1)
_POS_INF = _Infinity(+1)


def _lt(a: Any, b: Any) -> bool:
    """Total order over bounds ∪ {±∞}."""
    if a is b:
        return False
    if a is _NEG_INF or b is _POS_INF:
        return True
    if a is _POS_INF or b is _NEG_INF:
        return False
    return a < b


def _le(a: Any, b: Any) -> bool:
    return a is b or _lt(a, b) or (not _lt(b, a) and not _lt(a, b))


@dataclass(frozen=True)
class _Interval:
    """A non-empty interval of the ordered domain."""

    low: Any  # _Bound or _NEG_INF
    low_open: bool
    high: Any  # _Bound or _POS_INF
    high_open: bool

    def contains(self, bound: _Bound) -> bool:
        if self.low is not _NEG_INF:
            if _lt(bound, self.low) or (self.low_open and bound == self.low):
                return False
        if self.high is not _POS_INF:
            if _lt(self.high, bound) or (self.high_open and bound == self.high):
                return False
        return True

    def subsumes(self, other: "_Interval") -> bool:
        low_ok = (
            self.low is _NEG_INF
            or (
                other.low is not _NEG_INF
                and (
                    _lt(self.low, other.low)
                    or (self.low == other.low and (other.low_open or not self.low_open))
                )
            )
        )
        high_ok = (
            self.high is _POS_INF
            or (
                other.high is not _POS_INF
                and (
                    _lt(other.high, self.high)
                    or (
                        other.high == self.high
                        and (other.high_open or not self.high_open)
                    )
                )
            )
        )
        return low_ok and high_ok

    def intersect(self, other: "_Interval") -> Optional["_Interval"]:
        if other.low is _NEG_INF:
            low, low_open = self.low, self.low_open
        elif self.low is _NEG_INF:
            low, low_open = other.low, other.low_open
        elif _lt(self.low, other.low):
            low, low_open = other.low, other.low_open
        elif _lt(other.low, self.low):
            low, low_open = self.low, self.low_open
        else:
            low, low_open = self.low, self.low_open or other.low_open

        if other.high is _POS_INF:
            high, high_open = self.high, self.high_open
        elif self.high is _POS_INF:
            high, high_open = other.high, other.high_open
        elif _lt(other.high, self.high):
            high, high_open = other.high, other.high_open
        elif _lt(self.high, other.high):
            high, high_open = self.high, self.high_open
        else:
            high, high_open = self.high, self.high_open or other.high_open

        if low is not _NEG_INF and high is not _POS_INF:
            if _lt(high, low):
                return None
            if low == high and (low_open or high_open):
                return None
        return _Interval(low, low_open, high, high_open)


class Formula:
    """A predicate over one free variable, normalized as a union of
    disjoint, sorted intervals.  ``TRUE`` is the full-domain interval;
    ``FALSE`` is the empty union."""

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Sequence[_Interval] = ()):
        self._intervals = _normalize(intervals)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def true() -> "Formula":
        return TRUE

    @staticmethod
    def false() -> "Formula":
        return FALSE

    @staticmethod
    def compare(op: str, constant: Any) -> "Formula":
        """Build an atom ``v <op> c`` for op ∈ {=, !=, <, <=, >, >=}."""
        bound = _Bound(constant)
        if op == "=":
            return Formula([_Interval(bound, False, bound, False)])
        if op == "!=":
            return Formula([_Interval(bound, False, bound, False)]).negate()
        if op == "<":
            return Formula([_Interval(_NEG_INF, True, bound, True)])
        if op == "<=":
            return Formula([_Interval(_NEG_INF, True, bound, False)])
        if op == ">":
            return Formula([_Interval(bound, True, _POS_INF, True)])
        if op == ">=":
            return Formula([_Interval(bound, False, _POS_INF, True)])
        raise ValueError(f"unknown comparison operator {op!r}")

    # -- logical structure ----------------------------------------------------

    def conjoin(self, other: "Formula") -> "Formula":
        pieces = []
        for a in self._intervals:
            for b in other._intervals:
                meet = a.intersect(b)
                if meet is not None:
                    pieces.append(meet)
        return Formula(pieces)

    def disjoin(self, other: "Formula") -> "Formula":
        return Formula(list(self._intervals) + list(other._intervals))

    def negate(self) -> "Formula":
        result = [_Interval(_NEG_INF, True, _POS_INF, True)]
        for interval in self._intervals:
            complement = []
            if interval.low is not _NEG_INF:
                complement.append(
                    _Interval(_NEG_INF, True, interval.low, not interval.low_open)
                )
            if interval.high is not _POS_INF:
                complement.append(
                    _Interval(interval.high, not interval.high_open, _POS_INF, True)
                )
            next_result = []
            for piece in result:
                for comp in complement:
                    meet = piece.intersect(comp)
                    if meet is not None:
                        next_result.append(meet)
            result = next_result
        return Formula(result)

    def implies(self, other: "Formula") -> bool:
        """``φ₁ ⇒ φ₂``: every interval of φ₁ fits inside some interval of
        φ₂ (sound because the intervals of φ₂ are disjoint and sorted)."""
        return all(
            any(b.subsumes(a) for b in other._intervals) for a in self._intervals
        )

    def __and__(self, other: "Formula") -> "Formula":
        return self.conjoin(other)

    def __or__(self, other: "Formula") -> "Formula":
        return self.disjoin(other)

    def __invert__(self) -> "Formula":
        return self.negate()

    # -- queries --------------------------------------------------------------

    @property
    def is_false(self) -> bool:
        return not self._intervals

    @property
    def is_true(self) -> bool:
        return (
            len(self._intervals) == 1
            and self._intervals[0].low is _NEG_INF
            and self._intervals[0].high is _POS_INF
        )

    def satisfiable(self) -> bool:
        return not self.is_false

    def evaluate(self, value: Any) -> bool:
        """Whether a concrete domain value satisfies the formula.  ``None``
        (⊥, e.g. an element without text) satisfies only ``TRUE``.

        XML exposes every value as a string while queries compare against
        typed constants; following XQuery's dynamic casting, a string value
        is additionally tried as a number when it parses as one.
        """
        if self.is_true:
            return True
        if value is None:
            return False
        # XQuery-style dynamic casting: a numeric-looking string is judged
        # as a number (only — the cross-type total order would otherwise
        # rank every string above every number).
        if isinstance(value, str):
            stripped = value.strip()
            try:
                value = int(stripped)
            except ValueError:
                try:
                    value = float(stripped)
                except ValueError:
                    pass
        try:
            bound = _Bound(value)
        except TypeError:
            return False
        return any(interval.contains(bound) for interval in self._intervals)

    def equality_constant(self) -> Optional[Any]:
        """If the formula is a single point ``v = c``, return ``c``."""
        if len(self._intervals) != 1:
            return None
        interval = self._intervals[0]
        if (
            interval.low is not _NEG_INF
            and interval.low == interval.high
            and not interval.low_open
            and not interval.high_open
        ):
            return interval.low.value
        return None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Formula):
            return NotImplemented
        return self.implies(other) and other.implies(self)

    def __hash__(self) -> int:
        return hash(
            tuple(
                (
                    getattr(i.low, "value", repr(i.low)),
                    i.low_open,
                    getattr(i.high, "value", repr(i.high)),
                    i.high_open,
                )
                for i in self._intervals
            )
        )

    def __repr__(self) -> str:
        if self.is_true:
            return "T"
        if self.is_false:
            return "F"
        pieces = []
        for i in self._intervals:
            constant = None
            if i.low is not _NEG_INF and i.low == i.high:
                pieces.append(f"v={i.low.value!r}")
                continue
            left = "(" if i.low_open else "["
            right = ")" if i.high_open else "]"
            low = "-inf" if i.low is _NEG_INF else repr(i.low.value)
            high = "+inf" if i.high is _POS_INF else repr(i.high.value)
            pieces.append(f"v∈{left}{low},{high}{right}")
            del constant
        return " ∨ ".join(pieces)


def _normalize(intervals: Iterable[_Interval]) -> tuple[_Interval, ...]:
    """Sort and merge overlapping/adjacent intervals."""

    def sort_key(interval: _Interval):
        if interval.low is _NEG_INF:
            return (0, None, interval.low_open)
        return (1, (interval.low.rank, interval.low.value), interval.low_open)

    pending = sorted(intervals, key=sort_key)
    merged: list[_Interval] = []
    for interval in pending:
        if not merged:
            merged.append(interval)
            continue
        last = merged[-1]
        if _overlaps_or_touches(last, interval):
            merged[-1] = _merge(last, interval)
        else:
            merged.append(interval)
    return tuple(merged)


def _overlaps_or_touches(a: _Interval, b: _Interval) -> bool:
    """b.low is >= a.low by sorting; overlap when b.low <= a.high with
    closed-meets-closed or genuinely inside."""
    if a.high is _POS_INF or b.low is _NEG_INF:
        return True
    if _lt(b.low, a.high):
        return True
    if b.low == a.high and not (a.high_open and b.low_open):
        return True
    return False


def _merge(a: _Interval, b: _Interval) -> _Interval:
    if a.high is _POS_INF:
        high, high_open = a.high, a.high_open
    elif b.high is _POS_INF:
        high, high_open = b.high, b.high_open
    elif _lt(a.high, b.high):
        high, high_open = b.high, b.high_open
    elif _lt(b.high, a.high):
        high, high_open = a.high, a.high_open
    else:
        high, high_open = a.high, a.high_open and b.high_open
    if a.low is _NEG_INF or b.low is _NEG_INF:
        low, low_open = _NEG_INF, True
    elif _lt(a.low, b.low):
        low, low_open = a.low, a.low_open
    elif _lt(b.low, a.low):
        low, low_open = b.low, b.low_open
    else:
        low, low_open = a.low, a.low_open and b.low_open
    return _Interval(low, low_open, high, high_open)


TRUE = Formula([_Interval(_NEG_INF, True, _POS_INF, True)])
FALSE = Formula([])


def eq(constant: Any) -> Formula:
    return Formula.compare("=", constant)


def lt(constant: Any) -> Formula:
    return Formula.compare("<", constant)


def gt(constant: Any) -> Formula:
    return Formula.compare(">", constant)


def le(constant: Any) -> Formula:
    return Formula.compare("<=", constant)


def ge(constant: Any) -> Formula:
    return Formula.compare(">=", constant)


def between(low: Any, high: Any) -> Formula:
    return ge(low).conjoin(le(high))
