"""Nested-relational data model (thesis §1.2.2).

The algebra manipulates *nested tuples*: attribute values are either atomic
(strings, numbers, node identifiers), null (⊥, represented by ``None``), or
homogeneous collections of nested tuples — tuples and collections strictly
alternate, matching the hierarchical structure of XML data.

:class:`NestedTuple` is immutable-by-convention; operators always build new
tuples.  Dotted paths such as ``"A1.A21"`` address attributes nested inside
collections; :meth:`NestedTuple.iter_path` traverses them with the
existential semantics used by the ``map``-extended operators.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Optional

__all__ = ["NULL", "NestedTuple", "concat", "is_atomic"]

#: The null constant ⊥.
NULL = None


def is_atomic(value: Any) -> bool:
    """Atomic values are anything except nested-tuple collections."""
    return not isinstance(value, list)


class NestedTuple:
    """An ordered mapping of attribute names to values.

    Values are atoms, ``None`` (⊥), or ``list[NestedTuple]``.
    """

    __slots__ = ("_attrs",)

    def __init__(self, attrs: Optional[Mapping[str, Any]] = None, **kwargs: Any):
        merged: dict[str, Any] = dict(attrs) if attrs else {}
        merged.update(kwargs)
        self._attrs = merged

    # -- access -----------------------------------------------------------

    @property
    def attrs(self) -> dict[str, Any]:
        return self._attrs

    def names(self) -> list[str]:
        return list(self._attrs)

    def __contains__(self, name: str) -> bool:
        return name in self._attrs

    def __getitem__(self, name: str) -> Any:
        return self._attrs[name]

    def get(self, name: str, default: Any = NULL) -> Any:
        return self._attrs.get(name, default)

    def iter_path(self, path: str) -> Iterator[Any]:
        """Yield every value reachable along a nesting path.

        Path segments are separated by ``/`` (attribute names themselves
        contain dots, e.g. ``e1.ID``): ``"e2/e2.V"`` descends into the
        collection attribute ``e2`` and reads each member's ``e2.V``.  At
        each collection step all member tuples are traversed (existential
        semantics: a selection on the path succeeds when *some* reachable
        value satisfies the predicate, per Example 1.2.2).
        """
        parts = path.split("/")
        yield from self._iter_parts(parts)

    def _iter_parts(self, parts: list[str]) -> Iterator[Any]:
        head, rest = parts[0], parts[1:]
        if head not in self._attrs:
            return
        value = self._attrs[head]
        if not rest:
            yield value
            return
        if isinstance(value, list):
            for member in value:
                yield from member._iter_parts(rest)
        elif isinstance(value, NestedTuple):  # pragma: no cover - defensive
            yield from value._iter_parts(rest)
        # atomic value with leftover path: nothing reachable

    def first(self, path: str, default: Any = NULL) -> Any:
        for value in self.iter_path(path):
            return value
        return default

    # -- construction -----------------------------------------------------

    def with_attrs(self, **kwargs: Any) -> "NestedTuple":
        merged = dict(self._attrs)
        merged.update(kwargs)
        return NestedTuple(merged)

    def project(self, names: Iterable[str]) -> "NestedTuple":
        return NestedTuple({name: self._attrs.get(name, NULL) for name in names})

    def drop(self, names: Iterable[str]) -> "NestedTuple":
        dropped = set(names)
        return NestedTuple(
            {name: v for name, v in self._attrs.items() if name not in dropped}
        )

    def rename(self, mapping: Mapping[str, str]) -> "NestedTuple":
        return NestedTuple(
            {mapping.get(name, name): v for name, v in self._attrs.items()}
        )

    # -- equality / hashing --------------------------------------------------

    def freeze(self) -> tuple:
        """A hashable snapshot (used by duplicate-eliminating projection,
        set difference and group-by)."""
        items = []
        for name, value in sorted(self._attrs.items()):
            if isinstance(value, list):
                items.append((name, tuple(member.freeze() for member in value)))
            else:
                items.append((name, value))
        return tuple(items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NestedTuple):
            return NotImplemented
        return self.freeze() == other.freeze()

    def __hash__(self) -> int:
        return hash(self.freeze())

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._attrs.items())
        return f"({inner})"


def concat(left: NestedTuple, right: NestedTuple) -> NestedTuple:
    """Tuple concatenation ``t_R || t_S``.

    Attribute names must not collide; operators qualify attribute names
    with their pattern-node or relation names to guarantee this.
    """
    overlap = set(left.attrs) & set(right.attrs)
    if overlap:
        raise ValueError(f"attribute collision on concat: {sorted(overlap)}")
    merged = dict(left.attrs)
    merged.update(right.attrs)
    return NestedTuple(merged)
