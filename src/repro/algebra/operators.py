"""Logical algebra operators (thesis §1.2.2).

Every operator is a node of a logical plan tree exposing:

* ``children`` — sub-plans;
* ``schema()`` — the top-level attribute names of its output tuples;
* ``evaluate(context)`` — reference (naive, always-correct) evaluation,
  returning a list of :class:`~repro.algebra.model.NestedTuple`.

``context`` maps base-relation names to tuple lists; :class:`Scan` reads
from it, so the same plan can run over different stores (exactly how the
thesis decouples plans from storage).

The physical engine (:mod:`repro.engine.physical`) implements the
performance-oriented counterparts (StackTree structural joins, hash joins);
the logical evaluation here is the specification they are tested against.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

from ..xmldata.ids import is_ancestor_id, is_parent_id
from .model import NULL, NestedTuple, concat
from .predicates import Predicate

__all__ = [
    "Operator",
    "Scan",
    "BaseTuples",
    "Select",
    "Project",
    "Product",
    "Union",
    "Difference",
    "ValueJoin",
    "StructuralJoin",
    "GroupBy",
    "Unnest",
    "NestAll",
    "DerivedColumn",
    "Navigate",
    "XMLize",
    "TemplateElement",
    "TemplateAttr",
    "CHILD",
    "DESCENDANT",
    "JOIN",
    "OUTER",
    "SEMI",
    "NEST",
    "NEST_OUTER",
]

CHILD = "child"  # the / axis, ≺
DESCENDANT = "descendant"  # the // axis, ≺≺

JOIN = "j"
OUTER = "o"
SEMI = "s"
NEST = "nj"
NEST_OUTER = "no"

_JOIN_KINDS = (JOIN, OUTER, SEMI, NEST, NEST_OUTER)

Context = Mapping[str, Sequence[NestedTuple]]


class Operator:
    """Base logical operator."""

    children: tuple["Operator", ...] = ()

    def schema(self) -> list[str]:
        raise NotImplementedError

    def evaluate(self, context: Optional[Context] = None) -> list[NestedTuple]:
        raise NotImplementedError

    # -- cardinality estimation (consumed by the cost-based compiler) ---------

    def estimated_cardinality(self, ctx) -> Optional[float]:
        """Expected output tuple count given an
        :class:`~repro.engine.context.ExecutionContext` (its statistics
        provider and tunables).  ``None`` means "unknown" — the cost model
        substitutes a pessimistic default.  Estimates of shared subtrees
        are cached by the context (:meth:`ExecutionContext.estimate`), so
        operators should recurse through ``ctx.estimate(child)``.
        """
        if len(self.children) == 1:
            return ctx.estimate(self.children[0])
        return None

    # -- plan inspection (used by the QEP-shape benchmarks) -------------------

    def walk(self) -> "Iterator[Operator]":
        """Pre-order traversal of the plan tree (uniform across the
        logical and physical layers)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def operator_count(self) -> int:
        return 1 + sum(child.operator_count() for child in self.children)

    def join_count(self) -> int:
        own = 1 if isinstance(self, (ValueJoin, StructuralJoin, Product)) else 0
        return own + sum(child.join_count() for child in self.children)

    def leaves(self) -> list["Operator"]:
        if not self.children:
            return [self]
        found: list[Operator] = []
        for child in self.children:
            found.extend(child.leaves())
        return found

    def label(self) -> str:
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return self.pretty()


class Scan(Operator):
    """Scan a named base relation out of the evaluation context.

    ``missing_ok`` makes an absent relation read as empty — used for
    tag-derived collections of labels the document happens not to contain
    (``R_year`` when no ``year`` element exists).
    """

    def __init__(self, name: str, columns: Sequence[str], missing_ok: bool = False):
        self.name = name
        self.columns = list(columns)
        self.missing_ok = missing_ok

    def schema(self) -> list[str]:
        return list(self.columns)

    def evaluate(self, context: Optional[Context] = None) -> list[NestedTuple]:
        if context is None or self.name not in context:
            if self.missing_ok:
                return []
            raise KeyError(f"base relation {self.name!r} missing from context")
        return list(context[self.name])

    def estimated_cardinality(self, ctx) -> Optional[float]:
        return ctx.statistics.relation_size(self.name)

    def label(self) -> str:
        return f"Scan({self.name})"


class BaseTuples(Operator):
    """A literal tuple list embedded in the plan (bindings, test fixtures)."""

    def __init__(self, tuples: Sequence[NestedTuple], columns: Optional[Sequence[str]] = None):
        self.tuples = list(tuples)
        if columns is None:
            columns = self.tuples[0].names() if self.tuples else []
        self.columns = list(columns)

    def schema(self) -> list[str]:
        return list(self.columns)

    def evaluate(self, context: Optional[Context] = None) -> list[NestedTuple]:
        return list(self.tuples)

    def estimated_cardinality(self, ctx) -> Optional[float]:
        return float(len(self.tuples))

    def label(self) -> str:
        return f"BaseTuples[{len(self.tuples)}]"


class Select(Operator):
    """σ with optional nested-collection *reduction* (the map extension).

    With ``reduce_path`` set to a dotted collection path, member tuples
    failing ``member_predicate`` are filtered out of the collection and
    tuples whose collection becomes empty are eliminated — Example 1.2.2.
    """

    def __init__(
        self,
        child: Operator,
        predicate: Optional[Predicate] = None,
        reduce_path: Optional[str] = None,
        member_predicate: Optional[Predicate] = None,
    ):
        if predicate is None and member_predicate is None:
            raise ValueError("Select needs a predicate")
        self.children = (child,)
        self.predicate = predicate
        self.reduce_path = reduce_path
        self.member_predicate = member_predicate

    def schema(self) -> list[str]:
        return self.children[0].schema()

    def evaluate(self, context: Optional[Context] = None) -> list[NestedTuple]:
        tuples = self.children[0].evaluate(context)
        if self.predicate is not None:
            tuples = [t for t in tuples if self.predicate.holds(t)]
        if self.reduce_path is not None and self.member_predicate is not None:
            parts = self.reduce_path.split("/")
            reduced = []
            for t in tuples:
                new_t = _reduce_collection(t, parts, self.member_predicate)
                if new_t is not None:
                    reduced.append(new_t)
            tuples = reduced
        return tuples

    def estimated_cardinality(self, ctx) -> Optional[float]:
        child = ctx.estimate(self.children[0])
        if child is None:
            return None
        return child * ctx.tunables.predicate_selectivity

    def label(self) -> str:
        if self.predicate is not None:
            return f"σ[{self.predicate!r}]"
        return f"σ[{self.reduce_path} where {self.member_predicate!r}]"


def _reduce_collection(
    t: NestedTuple, parts: list[str], predicate: Predicate
) -> Optional[NestedTuple]:
    head, rest = parts[0], parts[1:]
    value = t.get(head)
    if not isinstance(value, list):
        # The map definition only descends through collections.
        return t if predicate.holds(t) else None
    if rest:
        new_members = []
        for member in value:
            new_member = _reduce_collection(member, rest, predicate)
            if new_member is not None:
                new_members.append(new_member)
    else:
        new_members = [member for member in value if predicate.holds(member)]
    if not new_members:
        return None
    return t.with_attrs(**{head: new_members})


class Project(Operator):
    """π — duplicate-preserving by default, duplicate-eliminating (π⁰)
    with ``dedup=True``.  ``renames`` maps old → new attribute names."""

    def __init__(
        self,
        child: Operator,
        columns: Sequence[str],
        dedup: bool = False,
        renames: Optional[Mapping[str, str]] = None,
    ):
        self.children = (child,)
        self.columns = list(columns)
        self.dedup = dedup
        self.renames = dict(renames) if renames else {}

    def schema(self) -> list[str]:
        return [self.renames.get(c, c) for c in self.columns]

    def evaluate(self, context: Optional[Context] = None) -> list[NestedTuple]:
        out = []
        seen = set()
        for t in self.children[0].evaluate(context):
            projected = t.project(self.columns)
            if self.renames:
                projected = projected.rename(self.renames)
            if self.dedup:
                key = projected.freeze()
                if key in seen:
                    continue
                seen.add(key)
            out.append(projected)
        return out

    def estimated_cardinality(self, ctx) -> Optional[float]:
        child = ctx.estimate(self.children[0])
        if child is None:
            return None
        return child * ctx.tunables.dedup_factor if self.dedup else child

    def label(self) -> str:
        mark = "π⁰" if self.dedup else "π"
        return f"{mark}[{', '.join(self.columns)}]"


class Product(Operator):
    """Cartesian product ×."""

    def __init__(self, left: Operator, right: Operator):
        self.children = (left, right)

    def schema(self) -> list[str]:
        return self.children[0].schema() + self.children[1].schema()

    def evaluate(self, context: Optional[Context] = None) -> list[NestedTuple]:
        left = self.children[0].evaluate(context)
        right = self.children[1].evaluate(context)
        return [concat(a, b) for a in left for b in right]

    def estimated_cardinality(self, ctx) -> Optional[float]:
        left = ctx.estimate(self.children[0])
        right = ctx.estimate(self.children[1])
        if left is None or right is None:
            return None
        return left * right

    def label(self) -> str:
        return "×"


class Union(Operator):
    """Duplicate-preserving union (list concatenation, keeping input
    order — which is also query concatenation, §3.3.2)."""

    def __init__(self, *parts: Operator):
        if not parts:
            raise ValueError("Union needs at least one input")
        self.children = tuple(parts)

    def schema(self) -> list[str]:
        return self.children[0].schema()

    def evaluate(self, context: Optional[Context] = None) -> list[NestedTuple]:
        out: list[NestedTuple] = []
        for child in self.children:
            out.extend(child.evaluate(context))
        return out

    def estimated_cardinality(self, ctx) -> Optional[float]:
        total = 0.0
        for child in self.children:
            estimate = ctx.estimate(child)
            if estimate is None:
                return None
            total += estimate
        return total

    def label(self) -> str:
        return "∪"


class Difference(Operator):
    """Set difference \\ (bag semantics: removes one occurrence per match)."""

    def __init__(self, left: Operator, right: Operator):
        self.children = (left, right)

    def schema(self) -> list[str]:
        return self.children[0].schema()

    def evaluate(self, context: Optional[Context] = None) -> list[NestedTuple]:
        right_counts: dict[tuple, int] = {}
        for t in self.children[1].evaluate(context):
            key = t.freeze()
            right_counts[key] = right_counts.get(key, 0) + 1
        out = []
        for t in self.children[0].evaluate(context):
            key = t.freeze()
            remaining = right_counts.get(key, 0)
            if remaining:
                right_counts[key] = remaining - 1
            else:
                out.append(t)
        return out

    def estimated_cardinality(self, ctx) -> Optional[float]:
        # upper bound: nothing subtracted
        return ctx.estimate(self.children[0])

    def label(self) -> str:
        return "\\"


def _null_tuple(columns: Sequence[str]) -> NestedTuple:
    return NestedTuple({c: NULL for c in columns})


def _join_kind_estimate(
    kind: str,
    left: Optional[float],
    right: Optional[float],
    pair_selectivity: float,
) -> Optional[float]:
    """Output estimate shared by value and structural joins: ``j`` fans
    out, ``o`` never drops a left tuple, ``s``/``nj`` keep a subset of the
    left side, ``no`` keeps exactly the left side."""
    if left is None or right is None:
        return None
    matches_per_left = right * pair_selectivity
    if kind == JOIN:
        return left * matches_per_left
    if kind == OUTER:
        return max(left, left * matches_per_left)
    if kind in (SEMI, NEST):
        return left * min(1.0, matches_per_left)
    return left  # NEST_OUTER


class ValueJoin(Operator):
    """Join on a value predicate, with all thesis variants.

    ``kind`` ∈ {``j`` join, ``o`` left outerjoin, ``s`` left semijoin,
    ``nj`` nest join, ``no`` nest outerjoin}.  Nest variants append a
    collection attribute named ``nest_as`` holding the matching right
    tuples (Definition 1.2.2 transposed to value predicates)."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        predicate: Predicate,
        kind: str = JOIN,
        nest_as: str = "s",
    ):
        if kind not in _JOIN_KINDS:
            raise ValueError(f"unknown join kind {kind!r}")
        self.children = (left, right)
        self.predicate = predicate
        self.kind = kind
        self.nest_as = nest_as

    def schema(self) -> list[str]:
        left = self.children[0].schema()
        if self.kind == SEMI:
            return left
        if self.kind in (NEST, NEST_OUTER):
            return left + [self.nest_as]
        return left + self.children[1].schema()

    def evaluate(self, context: Optional[Context] = None) -> list[NestedTuple]:
        left = self.children[0].evaluate(context)
        right = self.children[1].evaluate(context)
        right_columns = self.children[1].schema()
        return _combine(
            left,
            right,
            lambda a, b: self.predicate.holds(a, b),
            self.kind,
            self.nest_as,
            right_columns,
        )

    def estimated_cardinality(self, ctx) -> Optional[float]:
        return _join_kind_estimate(
            self.kind,
            ctx.estimate(self.children[0]),
            ctx.estimate(self.children[1]),
            ctx.tunables.equality_join_selectivity,
        )

    def label(self) -> str:
        symbol = {JOIN: "⨝", OUTER: "⟕", SEMI: "⋉", NEST: "⨝ⁿ", NEST_OUTER: "⟕ⁿ"}[
            self.kind
        ]
        return f"{symbol}[{self.predicate!r}]"


class StructuralJoin(Operator):
    """Structural join ⨝≺ / ⨝≺≺ and variants (Definitions 1.2.1–1.2.2).

    ``left_attr``/``right_attr`` name identifier attributes; ``left_attr``
    may be a ``/``-separated path into nested collections, in which case the join is
    applied through ``map`` (Example 1.2.3): right tuples nest inside the
    innermost collection members and members without matches are dropped
    (or kept, for outer variants).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_attr: str,
        right_attr: str,
        axis: str = CHILD,
        kind: str = JOIN,
        nest_as: str = "s",
    ):
        if axis not in (CHILD, DESCENDANT):
            raise ValueError(f"unknown axis {axis!r}")
        if kind not in _JOIN_KINDS:
            raise ValueError(f"unknown join kind {kind!r}")
        self.children = (left, right)
        self.left_attr = left_attr
        self.right_attr = right_attr
        self.axis = axis
        self.kind = kind
        self.nest_as = nest_as

    def schema(self) -> list[str]:
        left = self.children[0].schema()
        if self.kind == SEMI:
            return left
        if self.kind in (NEST, NEST_OUTER) or "/" in self.left_attr:
            return left if "/" in self.left_attr else left + [self.nest_as]
        return left + self.children[1].schema()

    def _matches(self, left_id: Any, right_id: Any) -> bool:
        if left_id is None or right_id is None:
            return False
        if self.axis == CHILD:
            return is_parent_id(left_id, right_id)
        return is_ancestor_id(left_id, right_id)

    def evaluate(self, context: Optional[Context] = None) -> list[NestedTuple]:
        left = self.children[0].evaluate(context)
        right = self.children[1].evaluate(context)
        right_columns = self.children[1].schema()
        parts = self.left_attr.split("/")
        if len(parts) == 1:
            return _combine(
                left,
                right,
                lambda a, b: self._matches(a.get(self.left_attr), b.get(self.right_attr)),
                self.kind,
                self.nest_as,
                right_columns,
            )
        # map-extended structural join: apply inside the nested collection.
        out = []
        for t in left:
            new_t = self._map_into(t, parts, right, right_columns)
            if new_t is not None:
                out.append(new_t)
        return out

    def _map_into(
        self,
        t: NestedTuple,
        parts: list[str],
        right: list[NestedTuple],
        right_columns: list[str],
    ) -> Optional[NestedTuple]:
        head, rest = parts[0], parts[1:]
        value = t.get(head)
        if not isinstance(value, list):
            if rest:
                return None
            combined = _combine(
                [t],
                right,
                lambda a, b: self._matches(a.get(head), b.get(self.right_attr)),
                self.kind,
                self.nest_as,
                right_columns,
            )
            return combined[0] if combined else None
        if rest:
            new_members = []
            for member in value:
                new_member = self._map_into(member, rest, right, right_columns)
                if new_member is not None:
                    new_members.append(new_member)
        else:
            new_members = _combine(
                value,
                right,
                lambda a, b: self._matches(a.get(parts[-1]), b.get(self.right_attr)),
                self.kind,
                self.nest_as,
                right_columns,
            )
        if not new_members and self.kind not in (OUTER, NEST_OUTER):
            return None
        return t.with_attrs(**{head: new_members})

    def estimated_cardinality(self, ctx) -> Optional[float]:
        left = ctx.estimate(self.children[0])
        right = ctx.estimate(self.children[1])
        if left is None or right is None:
            return None
        # A structural join pairs each right node with its (few) matching
        # ancestors, so the plain join scales with the larger input rather
        # than the product.
        if self.kind == JOIN:
            return max(left, right) * ctx.tunables.structural_selectivity
        return _join_kind_estimate(
            self.kind, left, right, ctx.tunables.structural_selectivity / max(right, 1.0)
        )

    def label(self) -> str:
        axis = "≺" if self.axis == CHILD else "≺≺"
        symbol = {JOIN: "⨝", OUTER: "⟕", SEMI: "⋉", NEST: "⨝ⁿ", NEST_OUTER: "⟕ⁿ"}[
            self.kind
        ]
        return f"{symbol}[{self.left_attr} {axis} {self.right_attr}]"


def _combine(
    left: Sequence[NestedTuple],
    right: Sequence[NestedTuple],
    match: Callable[[NestedTuple, NestedTuple], bool],
    kind: str,
    nest_as: str,
    right_columns: Sequence[str],
) -> list[NestedTuple]:
    """Shared join-variant machinery for value and structural joins."""
    out: list[NestedTuple] = []
    for a in left:
        matches = [b for b in right if match(a, b)]
        if kind == JOIN:
            out.extend(concat(a, b) for b in matches)
        elif kind == OUTER:
            if matches:
                out.extend(concat(a, b) for b in matches)
            else:
                out.append(concat(a, _null_tuple(right_columns)))
        elif kind == SEMI:
            if matches:
                out.append(a)
        elif kind == NEST:
            if matches:
                out.append(a.with_attrs(**{nest_as: matches}))
        elif kind == NEST_OUTER:
            out.append(a.with_attrs(**{nest_as: matches}))
    return out


class GroupBy(Operator):
    """γ — group by atomic key attributes, nesting the remaining attributes
    under ``nest_as``.  Output order follows first occurrence of each key."""

    def __init__(self, child: Operator, keys: Sequence[str], nest_as: str = "group"):
        self.children = (child,)
        self.keys = list(keys)
        self.nest_as = nest_as

    def schema(self) -> list[str]:
        return self.keys + [self.nest_as]

    def evaluate(self, context: Optional[Context] = None) -> list[NestedTuple]:
        groups: dict[tuple, list[NestedTuple]] = {}
        order: list[tuple] = []
        key_tuples: dict[tuple, NestedTuple] = {}
        for t in self.children[0].evaluate(context):
            key_tuple = t.project(self.keys)
            key = key_tuple.freeze()
            if key not in groups:
                groups[key] = []
                order.append(key)
                key_tuples[key] = key_tuple
            groups[key].append(t.drop(self.keys))
        return [
            key_tuples[key].with_attrs(**{self.nest_as: groups[key]}) for key in order
        ]

    def estimated_cardinality(self, ctx) -> Optional[float]:
        child = ctx.estimate(self.children[0])
        if child is None:
            return None
        return child * ctx.tunables.dedup_factor

    def label(self) -> str:
        return f"γ[{', '.join(self.keys)}]"


class Unnest(Operator):
    """u — flatten a collection attribute: one output tuple per member,
    member attributes spliced next to the outer ones.  Tuples whose
    collection is empty are dropped (use an outer variant upstream to keep
    them)."""

    def __init__(self, child: Operator, attr: str):
        self.children = (child,)
        self.attr = attr

    def schema(self) -> list[str]:
        outer = [c for c in self.children[0].schema() if c != self.attr]
        return outer + ["…"]

    def evaluate(self, context: Optional[Context] = None) -> list[NestedTuple]:
        out = []
        for t in self.children[0].evaluate(context):
            value = t.get(self.attr)
            rest = t.drop([self.attr])
            if isinstance(value, list):
                for member in value:
                    out.append(concat(rest, member))
        return out

    def estimated_cardinality(self, ctx) -> Optional[float]:
        child = ctx.estimate(self.children[0])
        if child is None:
            return None
        return child * ctx.tunables.collection_fanout

    def label(self) -> str:
        return f"u[{self.attr}]"


class NestAll(Operator):
    """The nest operator *n* of §3.3.2: pack the whole input into a single
    tuple with one collection attribute."""

    def __init__(self, child: Operator, nest_as: str = "A1"):
        self.children = (child,)
        self.nest_as = nest_as

    def schema(self) -> list[str]:
        return [self.nest_as]

    def evaluate(self, context: Optional[Context] = None) -> list[NestedTuple]:
        return [NestedTuple({self.nest_as: self.children[0].evaluate(context)})]

    def estimated_cardinality(self, ctx) -> Optional[float]:
        return 1.0

    def label(self) -> str:
        return f"n[{self.nest_as}]"


class DerivedColumn(Operator):
    """Append a computed attribute (e.g. the parent ID derived from a
    navigational child ID — the §5.2 rewriting enabler)."""

    def __init__(
        self,
        child: Operator,
        name: str,
        function: Callable[[NestedTuple], Any],
        description: str = "f",
    ):
        self.children = (child,)
        self.name = name
        self.function = function
        self.description = description

    def schema(self) -> list[str]:
        return self.children[0].schema() + [self.name]

    def evaluate(self, context: Optional[Context] = None) -> list[NestedTuple]:
        return [
            t.with_attrs(**{self.name: self.function(t)})
            for t in self.children[0].evaluate(context)
        ]

    def label(self) -> str:
        return f"derive[{self.name} := {self.description}]"


class Navigate(Operator):
    """Navigation inside a stored ``Cont`` attribute (§5.2).

    Re-parses the serialized content carried by ``content_attr`` and
    evaluates a downward path of ``(axis, label)`` steps inside it.
    Structural identifiers cannot be recovered from serialized content, so
    no ID attribute is produced — exactly the limitation the thesis notes.

    Two output shapes:

    * flat (``nest_out=False``, flat ``content_attr``): one output tuple
      per reached node, with ``{out}.V`` / ``{out}.C`` attributes; with
      ``keep_unmatched`` an unmatched input survives with ⊥s (outerjoin
      semantics), otherwise it is dropped;
    * nested (``nest_out=True``): reached nodes are collected into a
      collection attribute named ``out`` (nest-join semantics; with
      ``keep_unmatched`` the collection may be empty — nest-outerjoin).
      When ``content_attr`` crosses nested collections (``/`` in the
      path), the operator applies *inside* the innermost collection
      members (the ``map`` extension), preserving the nesting.
    """

    def __init__(
        self,
        child: Operator,
        content_attr: str,
        steps: Sequence[tuple[str, str]],
        out: str,
        keep_unmatched: bool = False,
        nest_out: bool = False,
    ):
        self.children = (child,)
        self.content_attr = content_attr
        self.steps = list(steps)
        self.out = out
        self.keep_unmatched = keep_unmatched
        self.nest_out = nest_out

    def schema(self) -> list[str]:
        base = self.children[0].schema()
        if "/" in self.content_attr:
            return base
        if self.nest_out:
            return base + [self.out]
        return base + [f"{self.out}.V", f"{self.out}.C"]

    def _matches_of(self, content) -> list:
        from ..xmldata.parser import parse_fragment

        if isinstance(content, str) and content.strip().startswith("<"):
            return _navigate([parse_fragment(content)], self.steps)
        return []

    def _apply_flat(self, t: NestedTuple, attr: str) -> list[NestedTuple]:
        matches = self._matches_of(t.get(attr))
        if matches:
            return [
                t.with_attrs(
                    **{f"{self.out}.V": node.value, f"{self.out}.C": node.content}
                )
                for node in matches
            ]
        if self.keep_unmatched:
            return [t.with_attrs(**{f"{self.out}.V": NULL, f"{self.out}.C": NULL})]
        return []

    def _apply_nested(self, t: NestedTuple, attr: str) -> list[NestedTuple]:
        matches = self._matches_of(t.get(attr))
        members = [
            NestedTuple({f"{self.out}.V": node.value, f"{self.out}.C": node.content})
            for node in matches
        ]
        if not members and not self.keep_unmatched:
            return []
        return [t.with_attrs(**{self.out: members})]

    def _apply_into(self, t: NestedTuple, parts: list[str]) -> list[NestedTuple]:
        head, rest = parts[0], parts[1:]
        if not rest:
            if self.nest_out:
                return self._apply_nested(t, head)
            return self._apply_flat(t, head)
        value = t.get(head)
        if not isinstance(value, list):
            return [t] if self.keep_unmatched else []
        new_members = []
        for member in value:
            new_members.extend(self._apply_into(member, rest))
        if not new_members and not self.keep_unmatched:
            return []
        return [t.with_attrs(**{head: new_members})]

    def evaluate(self, context: Optional[Context] = None) -> list[NestedTuple]:
        parts = self.content_attr.split("/")
        out: list[NestedTuple] = []
        for t in self.children[0].evaluate(context):
            out.extend(self._apply_into(t, parts))
        return out

    def label(self) -> str:
        trail = "".join(
            ("/" if axis == CHILD else "//") + label for axis, label in self.steps
        )
        mode = "ⁿ" if self.nest_out else ""
        return f"nav{mode}[{self.content_attr} {trail}]"


def _navigate(context_nodes, steps):
    nodes = list(context_nodes)
    for axis, label in steps:
        next_nodes = []
        for node in nodes:
            if axis == CHILD:
                candidates = node.children
            else:
                candidates = [d for c in node.children for d in c.iter_subtree()]
            for candidate in candidates:
                if label == "*" or candidate.label == label:
                    next_nodes.append(candidate)
        nodes = next_nodes
    return nodes


class TemplateElement:
    """A node of a tagging template (Example 1.2.4): a tag plus children
    that are nested templates, attribute references or literal text.

    ``repeat_over`` names the collection the element iterates over (a
    nested FLWR block's binding collection): one element is constructed
    per collection member, with references into that collection resolved
    against the member.  Attribute paths are always written relative to
    the top-level input tuple; the renderer keeps an environment of
    entered collections.
    """

    def __init__(
        self,
        tag: str,
        children: Sequence[Any] = (),
        repeat_over: Optional[str] = None,
    ):
        self.tag = tag
        self.children = list(children)
        self.repeat_over = repeat_over

    def __repr__(self) -> str:
        inner = "".join(map(repr, self.children))
        repeat = f" ∀{self.repeat_over}" if self.repeat_over else ""
        return f"<{self.tag}{repeat}>{inner}</{self.tag}>"


class TemplateAttr:
    """Reference to a (possibly nested) attribute whose values are spliced
    into the constructed element."""

    def __init__(self, path: str):
        self.path = path

    def __repr__(self) -> str:
        return "{" + self.path + "}"


class XMLize(Operator):
    """The ``xml_templ`` construction operator: serialize each (nested)
    input tuple through a tagging template.  Output tuples carry a single
    ``xml`` attribute with the serialized element."""

    def __init__(self, child: Operator, template: TemplateElement):
        self.children = (child,)
        self.template = template

    def schema(self) -> list[str]:
        return ["xml"]

    def evaluate(self, context: Optional[Context] = None) -> list[NestedTuple]:
        return [
            NestedTuple({"xml": render_template(self.template, t)})
            for t in self.children[0].evaluate(context)
        ]

    def label(self) -> str:
        return f"xml[{self.template!r}]"


class _Scope:
    """Environment of entered collections: absolute collection path →
    current member tuple."""

    def __init__(self, root: NestedTuple):
        self.root = root
        self.entries: list[tuple[str, NestedTuple]] = []

    def resolve(self, path: str) -> list:
        """All atomic values reachable at the absolute path, resolved
        against the deepest entered collection prefixing it."""
        for prefix, member in reversed(self.entries):
            if path == prefix:
                return [member]
            if path.startswith(prefix + "/"):
                return [
                    v
                    for v in member.iter_path(path[len(prefix) + 1 :])
                    if not isinstance(v, list)
                ]
        return [v for v in self.root.iter_path(path) if not isinstance(v, list)]

    def members(self, collection_path: str) -> list[NestedTuple]:
        """The member tuples of a collection at an absolute path."""
        source: Any = self.root
        remainder = collection_path
        for prefix, member in reversed(self.entries):
            if collection_path.startswith(prefix + "/"):
                source = member
                remainder = collection_path[len(prefix) + 1 :]
                break
        out: list[NestedTuple] = []
        for value in source.iter_path(remainder):
            if isinstance(value, list):
                out.extend(value)
        return out

    def entered(self, collection_path: str, member: NestedTuple) -> "_Scope":
        clone = _Scope(self.root)
        clone.entries = self.entries + [(collection_path, member)]
        return clone


def render_template(template: TemplateElement, t: NestedTuple) -> str:
    """Serialize one input tuple through the tagging template."""
    parts: list[str] = []
    _render_into(template, _Scope(t), parts)
    return "".join(parts)


def _render_into(template: TemplateElement, scope: _Scope, parts: list[str]) -> None:
    if template.repeat_over is not None:
        for member in scope.members(template.repeat_over):
            _render_one(template, scope.entered(template.repeat_over, member), parts)
    else:
        _render_one(template, scope, parts)


def _render_one(template: TemplateElement, scope: _Scope, parts: list[str]) -> None:
    parts.append(f"<{template.tag}>")
    for child in template.children:
        if isinstance(child, TemplateAttr):
            for value in scope.resolve(child.path):
                if value is not None and not isinstance(value, NestedTuple):
                    parts.append(str(value))
        elif isinstance(child, TemplateElement):
            _render_into(child, scope, parts)
        else:
            parts.append(str(child))
    parts.append(f"</{template.tag}>")
