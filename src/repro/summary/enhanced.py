"""Enhanced path summaries: edge integrity annotations (thesis §4.2.2).

An enhanced summary labels each summary edge ``parent → child`` with

``'1'``  every document node on the parent path has **exactly one** child
         on the child path (a *one-to-one* edge);
``'+'``  every such node has **at least one** child on the child path
         (a *strong* edge);
``'*'``  no constraint.

One-to-one edges also satisfy the ``+`` condition, so a ``'1'`` annotation
counts both as one-to-one and strong (matching the ``n_s (n_1)`` column of
the Figure 4.13 statistics).  Strong/one-to-one chains feed containment
(nesting-sequence relaxation, §4.4.5) and rewriting (§5.2's "if all items
have mail descendants, V1 can be used directly").
"""

from __future__ import annotations

from ..xmldata import ATTRIBUTE, ELEMENT, TEXT, Document, XMLNode
from .path_summary import PathSummary, SummaryNode, build_summary

__all__ = [
    "annotate_edges",
    "build_enhanced_summary",
    "is_strong_chain",
    "is_one_to_one_chain",
    "summary_statistics",
]


def build_enhanced_summary(doc: Document) -> PathSummary:
    """Build ``S(D)`` and compute its edge annotations in one pass."""
    summary = build_summary(doc)
    annotate_edges(summary, doc)
    return summary


def annotate_edges(summary: PathSummary, doc: Document) -> PathSummary:
    """Compute the ``1/+/*`` annotation of every summary edge from data.

    For every summary edge we track, over all document nodes on the parent
    path, the minimum and maximum number of children on the child path.
    ``min ≥ 1`` makes the edge strong; ``min = max = 1`` makes it
    one-to-one.
    """
    # (parent summary node, child label) → [min_count, max_count]
    bounds: dict[tuple[int, str], list[int]] = {}

    def record(snode: SummaryNode, counts: dict[str, int]) -> None:
        for label, child in snode.children.items():
            count = counts.get(label, 0)
            key = (snode.pre, label)
            entry = bounds.get(key)
            if entry is None:
                bounds[key] = [count, count]
            else:
                if count < entry[0]:
                    entry[0] = count
                if count > entry[1]:
                    entry[1] = count
            del child  # annotation applied in the final sweep

    def visit(node: XMLNode, snode: SummaryNode) -> None:
        counts: dict[str, int] = {}
        for child in node.children:
            if child.kind == ELEMENT:
                counts[child.label] = counts.get(child.label, 0) + 1
            elif child.kind == ATTRIBUTE:
                counts[child.label] = counts.get(child.label, 0) + 1
            elif child.kind == TEXT:
                counts["#text"] = counts.get("#text", 0) + 1
        record(snode, counts)
        for child in node.children:
            if child.kind == ELEMENT:
                child_summary = snode.child(child.label)
                if child_summary is None:
                    raise ValueError(
                        f"document does not conform to summary at {child.label!r}"
                    )
                visit(child, child_summary)

    top_summary = summary.root.child(doc.top.label)
    if top_summary is None:
        raise ValueError("document top element missing from summary")
    record(summary.root, {doc.top.label: 1})
    visit(doc.top, top_summary)

    for snode in summary.nodes():
        assert snode.parent is not None
        entry = bounds.get((snode.parent.pre, snode.label))
        if entry is None:
            # Path present in the summary but absent from this document:
            # no evidence, keep the weakest annotation.
            snode.edge_annotation = "*"
        elif entry[0] == 1 and entry[1] == 1:
            snode.edge_annotation = "1"
        elif entry[0] >= 1:
            snode.edge_annotation = "+"
        else:
            snode.edge_annotation = "*"
    return summary


def _edges_on_chain(ancestor: SummaryNode, descendant: SummaryNode) -> list[SummaryNode]:
    """Child endpoints of the edges on the chain ancestor → descendant."""
    if ancestor is descendant:
        return []
    if ancestor.summary is None:
        raise ValueError("summary nodes must belong to a finalized summary")
    chain = ancestor.summary.chain(ancestor, descendant)
    return chain[1:]


def is_strong_chain(ancestor: SummaryNode, descendant: SummaryNode) -> bool:
    """Every edge from ``ancestor`` down to ``descendant`` is ``+`` or
    ``1``: every instance of the ancestor path has at least one descendant
    on the descendant path."""
    return all(
        node.edge_annotation in ("+", "1")
        for node in _edges_on_chain(ancestor, descendant)
    )


def is_one_to_one_chain(ancestor: SummaryNode, descendant: SummaryNode) -> bool:
    """Every edge on the chain is ``1``: instances of the two paths are in
    bijection, so nesting under one is equivalent to nesting under the
    other (the §4.4.5 relaxation)."""
    return all(
        node.edge_annotation == "1"
        for node in _edges_on_chain(ancestor, descendant)
    )


def summary_statistics(summary: PathSummary, doc: Document) -> dict[str, int]:
    """The per-document row of the Figure 4.13 table."""
    return {
        "nodes": doc.count(),
        "elements": doc.count("element"),
        "summary_size": len(summary),
        "strong_edges": summary.count_strong_edges(),
        "one_to_one_edges": summary.count_one_to_one_edges(),
    }
