"""XML path summaries — strong DataGuides for tree data (thesis §4.2.1).

A :class:`PathSummary` is a tree with one node per distinct rooted path in
the summarized document(s).  The mapping φ sends every document node to the
summary node reachable by the same label path (Definition 4.2.1); text
children map to a ``#text`` summary child and attributes to ``@name``
children.

Summary nodes carry:

* a *path number* — the integer identifiers of Example 4.2.1, assigned in
  pre-order starting at 1 for the top element;
* ``pre``/``post`` intervals for O(1) ancestor tests between summary nodes;
* a cardinality (how many document nodes map onto the path), used for
  statistics and for computing the enhanced-summary edge annotations;
* an optional edge annotation (``'1'``, ``'+'`` or ``'*'``) describing the
  edge from the parent — see :mod:`repro.summary.enhanced`.

The synthetic root node (number 0, label ``#document``) stands for the ⊤ of
XAM patterns, so pattern→summary embeddings can map ⊤ somewhere concrete.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..xmldata import ATTRIBUTE, DOCUMENT, ELEMENT, TEXT, Document, XMLNode

__all__ = ["SummaryNode", "PathSummary", "build_summary"]


class SummaryNode:
    """One rooted path of the summarized data."""

    __slots__ = (
        "label",
        "number",
        "parent",
        "children",
        "cardinality",
        "edge_annotation",
        "pre",
        "post",
        "summary",
    )

    def __init__(self, label: str, parent: Optional["SummaryNode"] = None):
        self.label = label
        self.parent = parent
        self.children: dict[str, SummaryNode] = {}
        self.number: int = -1
        self.cardinality: int = 0
        #: annotation of the edge parent → self: '1' (exactly one child on
        #: this path under every parent instance), '+' (at least one), '*'
        #: (no constraint), or None when constraints were not computed.
        self.edge_annotation: Optional[str] = None
        self.pre: int = -1
        self.post: int = -1
        self.summary: Optional["PathSummary"] = None

    # -- structure ----------------------------------------------------------

    def child(self, label: str) -> Optional["SummaryNode"]:
        return self.children.get(label)

    def ensure_child(self, label: str) -> "SummaryNode":
        node = self.children.get(label)
        if node is None:
            node = SummaryNode(label, parent=self)
            self.children[label] = node
        return node

    def iter_subtree(self) -> Iterator["SummaryNode"]:
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(list(node.children.values())))

    def descendants(self) -> Iterator["SummaryNode"]:
        it = self.iter_subtree()
        next(it)
        return it

    def ancestors(self) -> Iterator["SummaryNode"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def is_ancestor_of(self, other: "SummaryNode") -> bool:
        return self.pre < other.pre and other.post < self.post

    def is_parent_of(self, other: "SummaryNode") -> bool:
        return other.parent is self

    @property
    def is_attribute(self) -> bool:
        return self.label.startswith("@")

    @property
    def is_text(self) -> bool:
        return self.label == "#text"

    def path_labels(self) -> tuple[str, ...]:
        """Labels from the top element down to this node."""
        labels: list[str] = []
        node: Optional[SummaryNode] = self
        while node is not None and node.parent is not None:
            labels.append(node.label)
            node = node.parent
        return tuple(reversed(labels))

    def path_string(self) -> str:
        return "/" + "/".join(self.path_labels())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SummaryNode #{self.number} {self.path_string()}>"


class PathSummary:
    """A strong DataGuide over tree-structured data.

    Construct with :func:`build_summary` (from a document) or
    :meth:`from_paths` (explicitly, for fixtures such as the thesis'
    Figure 4.7 / Figure 4.12 summaries).
    """

    def __init__(self) -> None:
        self.root = SummaryNode("#document")
        self._by_number: list[SummaryNode] = []
        self._by_label: dict[str, list[SummaryNode]] = {}
        self._finalized = False

    # -- construction -------------------------------------------------------

    @classmethod
    def from_paths(cls, paths: Sequence[str]) -> "PathSummary":
        """Build a summary from rooted path strings like ``/a/b/@id``.

        All paths must share the same first label (the top element).
        """
        summary = cls()
        for path in paths:
            labels = [piece for piece in path.split("/") if piece]
            if not labels:
                raise ValueError(f"empty path {path!r}")
            node = summary.root
            for label in labels:
                node = node.ensure_child(label)
        summary.finalize()
        return summary

    def add_document(self, doc: Document) -> None:
        """Fold a document into the summary (the φ mapping), updating
        cardinalities.  Call :meth:`finalize` when done."""
        self._finalized = False

        def visit(node: XMLNode, snode: SummaryNode) -> None:
            snode.cardinality += 1
            for child in node.children:
                if child.kind == ELEMENT:
                    visit(child, snode.ensure_child(child.label))
                elif child.kind == ATTRIBUTE:
                    snode.ensure_child(child.label).cardinality += 1
                elif child.kind == TEXT:
                    snode.ensure_child("#text").cardinality += 1

        visit(doc.top, self.root.ensure_child(doc.top.label))

    def finalize(self) -> "PathSummary":
        """Assign path numbers and pre/post intervals; build label index."""
        self._by_number = []
        self._by_label = {}
        number = 0
        clock = 0

        self.root.number = 0

        def visit(node: SummaryNode) -> None:
            nonlocal number, clock
            node.summary = self
            if node.parent is not None:
                number += 1
                node.number = number
                self._by_number.append(node)
                self._by_label.setdefault(node.label, []).append(node)
            # Interval numbering from one clock: for any descendant d of n,
            # n.pre < d.pre < d.post < n.post — O(1) ancestor tests.
            clock += 1
            node.pre = clock
            for child in node.children.values():
                visit(child)
            clock += 1
            node.post = clock

        visit(self.root)
        self._finalized = True
        return self

    # -- lookups ---------------------------------------------------------------

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise RuntimeError("summary not finalized; call finalize() first")

    def nodes(self) -> list[SummaryNode]:
        """All real summary nodes (the ⊤ root excluded), in path-number
        order."""
        self._require_finalized()
        return list(self._by_number)

    def __len__(self) -> int:
        self._require_finalized()
        return len(self._by_number)

    def node_by_number(self, number: int) -> SummaryNode:
        self._require_finalized()
        if number == 0:
            return self.root
        return self._by_number[number - 1]

    def nodes_labeled(self, label: str) -> list[SummaryNode]:
        """Summary nodes carrying ``label`` (used to enumerate embedding
        candidates; ``*`` patterns consider every node)."""
        self._require_finalized()
        return list(self._by_label.get(label, []))

    def node_for_path(self, path: str) -> Optional[SummaryNode]:
        """Resolve a rooted path string like ``/site/people/person``."""
        node: Optional[SummaryNode] = self.root
        for label in (piece for piece in path.split("/") if piece):
            if node is None:
                return None
            node = node.child(label)
        return node if node is not self.root else None

    def node_for(self, xml_node: XMLNode) -> Optional[SummaryNode]:
        """The φ image of a document node."""
        if xml_node.kind == DOCUMENT:
            return self.root
        node: Optional[SummaryNode] = self.root
        for label in xml_node.rooted_path():
            if node is None:
                return None
            node = node.child(label)
        return node

    def chain(self, ancestor: SummaryNode, descendant: SummaryNode) -> list[SummaryNode]:
        """The unique summary path from ``ancestor`` down to ``descendant``
        (both included).  Raises if not related."""
        nodes = [descendant]
        node = descendant
        while node is not ancestor:
            if node.parent is None:
                raise ValueError(
                    f"{ancestor!r} is not an ancestor of {descendant!r}"
                )
            node = node.parent
            nodes.append(node)
        nodes.reverse()
        return nodes

    # -- conformance (Definition 4.2.2) ----------------------------------------

    def conforms(self, doc: Document) -> bool:
        """``S ⊨ D``: the document's paths are exactly this summary's paths.

        We check ``S(D) = S`` structurally: every document path exists in
        the summary and every summary path occurs in the document.
        """
        observed = build_summary(doc)
        return _same_tree(observed.root, self.root)

    def describes(self, doc: Document) -> bool:
        """Weaker test: every document path exists in the summary (the
        document may not exercise all summary paths).  This is the practical
        check when one summary serves several documents."""
        for node in doc.nodes():
            if self.node_for(node) is None:
                return False
        return True

    # -- statistics --------------------------------------------------------------

    def count_strong_edges(self) -> int:
        return sum(1 for n in self.nodes() if n.edge_annotation in ("+", "1"))

    def count_one_to_one_edges(self) -> int:
        return sum(1 for n in self.nodes() if n.edge_annotation == "1")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PathSummary |S|={len(self)}>"


def _same_tree(a: SummaryNode, b: SummaryNode) -> bool:
    if a.label != b.label or set(a.children) != set(b.children):
        return False
    return all(_same_tree(a.children[k], b.children[k]) for k in a.children)


def build_summary(doc: Document) -> PathSummary:
    """Build the path summary ``S(D)`` of a single document."""
    summary = PathSummary()
    summary.add_document(doc)
    summary.finalize()
    return summary
