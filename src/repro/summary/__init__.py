"""Structural summaries: path summaries (DataGuides) and enhanced summaries."""

from .path_summary import PathSummary, SummaryNode, build_summary
from .enhanced import (
    annotate_edges,
    build_enhanced_summary,
    is_one_to_one_chain,
    is_strong_chain,
    summary_statistics,
)

__all__ = [
    "PathSummary",
    "SummaryNode",
    "build_summary",
    "annotate_edges",
    "build_enhanced_summary",
    "is_one_to_one_chain",
    "is_strong_chain",
    "summary_statistics",
]
