"""Unfragmented ("blob") storage (thesis §2.1.1, non-fragmented models).

Document-centric data — marked-up text such as XMark item descriptions or
INEX articles — is best stored *coarsely*: the whole serialized content of
selected elements in one textual field.  This avoids the join cascades of
fragmented stores when the textual image must be recomposed: the thesis'
QEP₉ (one structural join over ``sectionContent``) versus QEP₈ (joins over
``section``/``title``/``it``/``b``/``#text`` path partitions).

:func:`build_content_store` materializes ``<tag>Content(ID, content)``
relations for the requested tags, described by ``//tag[id:s, cont]`` XAMs.
:func:`build_document_blob` is the degenerate whole-document blob.
"""

from __future__ import annotations

from typing import Sequence

from typing import Optional

from ..algebra.model import NestedTuple
from ..engine import faults
from ..engine.storage import Store
from ..xmldata.ids import STRUCTURAL, id_of
from ..xmldata.node import Document
from .catalog import Catalog

__all__ = ["build_content_store", "build_document_blob", "fetch_content"]


def build_content_store(
    doc: Document, store: Store, catalog: Catalog, tags: Sequence[str]
) -> list[str]:
    """Store the full content of every element with one of ``tags``."""
    names = []
    for tag in tags:
        rows = [
            NestedTuple({"ID": id_of(node, STRUCTURAL), "content": node.content})
            for node in doc.elements()
            if node.label == tag
        ]
        relation = f"{tag}Content"
        store.add(relation, rows, order="ID")
        catalog.register(
            relation, f"//{tag}[id:s, cont]", relation=relation, kind="storage"
        )
        names.append(relation)
    return names


def fetch_content(store: Store, relation: str, node_id=None) -> list[Optional[str]]:
    """Read the textual field(s) of a blob/content relation — the
    read-side counterpart of :func:`build_content_store`.

    ``node_id`` narrows the fetch to one element's blob; ``None`` returns
    every stored content field.  This is the ``blob.fetch`` fault point:
    blob reads are the engine's coarsest I/O (whole serialized subtrees),
    so chaos runs target them separately from tuple scans.
    """
    faults.check(faults.BLOB_FETCH, relation)
    rows = store[relation].tuples
    if node_id is not None:
        rows = [row for row in rows if row.first("ID") == node_id]
    return [row.first("content") for row in rows]


def build_document_blob(doc: Document, store: Store, catalog: Catalog) -> str:
    """The whole document as a single serialized blob — the lowest
    fragmentation degree the XAM language must describe."""
    row = NestedTuple(
        {"ID": id_of(doc.top, STRUCTURAL), "content": doc.top.content}
    )
    relation = "documentBlob"
    store.add(relation, [row])
    catalog.register(
        relation,
        f"/{doc.top.label}[id:s, cont]",
        relation=relation,
        kind="storage",
    )
    return relation
