"""The storage catalog: the optimizer's only view of physical layout.

The thesis' central engineering claim is that *all* persistent structures
— base storage, indexes, materialized views — are described to the
optimizer uniformly, as XAMs.  Adding or dropping a structure is a catalog
update; no optimizer code changes (§2.1.4, "Putting it all together").

A :class:`CatalogEntry` ties together the XAM description, the name of the
base relation holding the data, and optional access metadata (the declared
physical order and index-key attributes for restricted XAMs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..core.xam import Pattern
from ..core.xam_parser import parse_pattern

__all__ = ["CatalogEntry", "Catalog"]


@dataclass
class CatalogEntry:
    """One persistent storage structure, as the optimizer sees it."""

    name: str
    pattern: Pattern
    #: base relation name in the store (defaults to ``name``)
    relation: str = ""
    #: order descriptor of the stored tuples, if maintained
    order: Optional[str] = None
    #: free-form tag: "storage", "index", "view" — informational only;
    #: the optimizer treats all uniformly, which is the whole point
    kind: str = "view"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.relation:
            self.relation = self.name

    @property
    def is_index(self) -> bool:
        """Restricted XAMs (``R`` markers) model index structures."""
        return self.pattern.has_required_attrs


class Catalog:
    """The set of XAMs describing the storage.

    A change to the storage is communicated to the optimizer simply by
    updating this set (§2.2's "simply by updating the XAM set").

    :attr:`version` counts mutations (register / unregister); cached
    query plans are stamped with the version they were prepared against,
    so any catalog change invalidates them without further coordination
    (see :mod:`repro.engine.plan_cache`).
    """

    def __init__(self) -> None:
        self._entries: dict[str, CatalogEntry] = {}
        #: monotonically increasing mutation counter
        self.version: int = 0

    def register(
        self,
        name: str,
        pattern: Pattern | str,
        relation: str = "",
        order: Optional[str] = None,
        kind: str = "view",
        **metadata,
    ) -> CatalogEntry:
        if isinstance(pattern, str):
            pattern = parse_pattern(pattern)
        entry = CatalogEntry(
            name=name,
            pattern=pattern,
            relation=relation,
            order=order,
            kind=kind,
            metadata=metadata,
        )
        self._entries[name] = entry
        self.version += 1
        return entry

    def unregister(self, name: str) -> None:
        del self._entries[name]
        self.version += 1

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __getitem__(self, name: str) -> CatalogEntry:
        return self._entries[name]

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[CatalogEntry]:
        return list(self._entries.values())

    def __iter__(self) -> Iterator[CatalogEntry]:
        return iter(self._entries.values())

    def views(self) -> list[CatalogEntry]:
        """Entries usable as rewriting inputs (unrestricted XAMs; indexes
        need bindings and are exploited through dedicated access paths)."""
        return [entry for entry in self._entries.values() if not entry.is_index]

    def indexes(self) -> list[CatalogEntry]:
        return [entry for entry in self._entries.values() if entry.is_index]
