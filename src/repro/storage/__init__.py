"""Storage models described as XAMs: relational, native, blob, views."""

from .catalog import Catalog, CatalogEntry
from .materialize import first_id_attribute, index_lookup, materialize_view
from .relational import (
    build_edge_store,
    build_shredded_store,
    build_universal_store,
    build_xrel_store,
)
from .native import (
    build_node_store,
    build_path_partitioned_store,
    build_structural_store,
    build_tag_partitioned_store,
)
from .blob import build_content_store, build_document_blob
from .dom import DOMStore

__all__ = [
    "Catalog",
    "CatalogEntry",
    "first_id_attribute",
    "index_lookup",
    "materialize_view",
    "build_edge_store",
    "build_shredded_store",
    "build_universal_store",
    "build_xrel_store",
    "build_node_store",
    "build_path_partitioned_store",
    "build_structural_store",
    "build_tag_partitioned_store",
    "build_content_store",
    "build_document_blob",
    "DOMStore",
]
