"""Materializing XAM views over documents.

``materialize_view`` evaluates a XAM against a document and installs the
resulting (possibly nested) tuples as a base relation, registering the XAM
in the catalog — after this, the optimizer can use the view for rewriting
without ever learning how it is stored.

Restricted XAMs (indexes) are materialized *unrestricted* and additionally
get a B+-tree index on their required attributes, so that binding-driven
lookups (Definition 2.2.6) run as index probes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..algebra.model import NestedTuple
from ..core.semantics import tuple_intersection
from ..core.embedding import evaluate_pattern
from ..core.xam import Pattern
from ..core.xam_parser import parse_pattern
from ..engine import faults
from ..engine.storage import Store
from ..xmldata.node import Document
from .catalog import Catalog, CatalogEntry

__all__ = ["materialize_view", "index_lookup", "first_id_attribute"]


def first_id_attribute(pattern: Pattern) -> Optional[str]:
    """The output attribute holding the first stored ID, if any — views
    materialized in document order are ordered on it."""
    for node in pattern.nodes():
        if node.store_id:
            return f"{node.name}.ID"
    return None


def materialize_view(
    name: str,
    pattern: Pattern | str,
    doc: Document,
    store: Store,
    catalog: Catalog,
    kind: str = "view",
) -> CatalogEntry:
    """Evaluate the XAM over ``doc``, store the tuples, register the XAM."""
    if isinstance(pattern, str):
        pattern = parse_pattern(pattern)
    unrestricted = _erase_required(pattern)
    tuples = evaluate_pattern(unrestricted, doc)
    order = first_id_attribute(pattern) if pattern.ordered else None
    relation = store.add(name, tuples, order=order)
    entry = catalog.register(name, pattern, relation=name, order=order, kind=kind)
    required = _required_attributes(pattern)
    if required:
        relation.build_index(required)
        entry.metadata["index_key"] = required
    return entry


def _erase_required(pattern: Pattern) -> Pattern:
    clone = pattern.copy()
    for node in clone.nodes():
        node.id_required = False
        node.tag_required = False
        node.value_required = False
    return clone


def _required_attributes(pattern: Pattern) -> list[str]:
    """Top-level lookup key attributes of a restricted XAM.

    Keys nested under nest edges cannot feed a flat B+-tree key; such
    XAMs fall back to binding-by-intersection (Definition 2.2.6) at lookup
    time.
    """
    attrs = []
    for node in pattern.nodes():
        nested = _under_nest_edge(node)
        if node.id_required and not nested:
            attrs.append(f"{node.name}.ID")
        if node.tag_required and not nested:
            attrs.append(f"{node.name}.L")
        if node.value_required and not nested:
            attrs.append(f"{node.name}.V")
    return attrs


def _under_nest_edge(node) -> bool:
    walk = node
    while walk.parent_edge is not None:
        if walk.parent_edge.nested:
            return True
        walk = walk.parent_edge.parent
    return False


def index_lookup(
    entry: CatalogEntry,
    store: Store,
    bindings: Sequence[NestedTuple],
) -> list[NestedTuple]:
    """Evaluate a restricted XAM against bindings (Definition 2.2.6),
    probing the B+-tree when the key is flat, falling back to nested
    tuple intersection otherwise."""
    faults.check(faults.INDEX_VALUE, entry.name)
    relation = store[entry.relation]
    key_attrs = entry.metadata.get("index_key")
    out: list[NestedTuple] = []
    for binding in bindings:
        if key_attrs and all(attr in binding for attr in key_attrs):
            candidates = relation.lookup(
                key_attrs, [binding.first(attr) for attr in key_attrs]
            )
        else:
            candidates = relation.tuples
        for t in candidates:
            meet = tuple_intersection(t, binding)
            if meet is not None:
                out.append(meet)
    return out
