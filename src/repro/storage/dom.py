"""DOM-style access methods modeled as XAMs (thesis §2.3.2, Fig. 2.13).

Many engines of the era accessed data through DOM trees; the thesis shows
the DOM primitives are just more storage structures the XAM language
describes:

* ``get_elements_by_tag_name`` — tag → element IDs (Fig. 2.13(a));
* ``get_parent_node`` / ``get_child_nodes`` — navigation requiring a known
  node ID (Fig. 2.13(c)/(d): XAMs with an ``R``-marked ID);
* ``get_descendants_by_tag`` — known node ID + descendant tag
  (Fig. 2.13(e)).

Sibling navigation is the documented XAM limitation (§2.3.4) — the class
deliberately does not offer it.

:class:`DOMStore` materializes the needed relations once, registers the
describing XAMs, and serves lookups from B+-tree indexes, so it behaves
like the persistent-tree stores (Natix/Timber) the section discusses.
"""

from __future__ import annotations

from typing import Optional

from ..algebra.model import NestedTuple
from ..engine.storage import Store
from ..xmldata.ids import STRUCTURAL, StructuralID, id_of
from ..xmldata.node import ELEMENT, Document
from .catalog import Catalog

__all__ = ["DOMStore"]


class DOMStore:
    """DOM access methods over a materialized node store."""

    def __init__(self, doc: Document, catalog: Optional[Catalog] = None):
        self.store = Store()
        self.catalog = catalog if catalog is not None else Catalog()
        rows = []
        for node in doc.elements():
            parent = node.parent
            rows.append(
                NestedTuple(
                    {
                        "ID": id_of(node, STRUCTURAL),
                        "tag": node.label,
                        "parentID": (
                            id_of(parent, STRUCTURAL)
                            if parent is not None and parent.kind == ELEMENT
                            else None
                        ),
                    }
                )
            )
        relation = self.store.add("dom_nodes", rows, order="ID")
        relation.build_index(["tag"])
        relation.build_index(["ID"])
        relation.build_index(["parentID"])
        # Fig. 2.13(a): elements by tag — the tag is the access key
        self.catalog.register(
            "dom_by_tag", "//*[id:s, tag!]", relation="dom_nodes", kind="index"
        )
        # Fig. 2.13(c)/(d): parent/child navigation from a known ID
        self.catalog.register(
            "dom_children", "//*[id:s!]{/*[id:s, tag]}", relation="dom_nodes",
            kind="index",
        )

    def get_elements_by_tag_name(self, tag: str) -> list[StructuralID]:
        """All element IDs with the given tag, in document order."""
        hits = self.store["dom_nodes"].lookup(["tag"], [tag])
        return sorted(t["ID"] for t in hits)

    def get_parent_node(self, node_id: StructuralID) -> Optional[StructuralID]:
        hits = self.store["dom_nodes"].lookup(["ID"], [node_id])
        if not hits:
            raise KeyError(f"unknown node {node_id}")
        return hits[0]["parentID"]

    def get_child_nodes(self, node_id: StructuralID) -> list[StructuralID]:
        hits = self.store["dom_nodes"].lookup(["parentID"], [node_id])
        return sorted(t["ID"] for t in hits)

    def get_descendants_by_tag(
        self, node_id: StructuralID, tag: str
    ) -> list[StructuralID]:
        """Fig. 2.13(e): descendants of a known node with a known tag —
        answered from the tag index by structural-interval filtering."""
        return [
            candidate
            for candidate in self.get_elements_by_tag_name(tag)
            if node_id.is_ancestor_of(candidate)
        ]
