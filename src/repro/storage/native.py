"""Native XML storage models (thesis §2.1.1, native models #1–#4).

* **Model #1** (:func:`build_node_store`) — the Galax-like node store:
  ``main(ID, parentID, kind, nameID)`` + ``text(ID, text)`` +
  ``name(nameID, name)``; simple integer IDs, parent pointers.
* **Model #2** (:func:`build_structural_store`) — same content but
  ``(pre, post, depth)`` structural identifiers; the ``parentID`` column
  disappears because structural joins replace pointer chasing.
* **Model #3** (:func:`build_tag_partitioned_store`) — Timber/Natix-style
  tag partitioning: one relation of structural IDs per element tag, plus
  ``text(ID, text)``.
* **Model #4** (:func:`build_path_partitioned_store`) — Monet/XQueC-style
  path partitioning: one relation per summary path; text/attribute paths
  store ``(ID, value)`` pairs in document order.

Each builder loads relations into the store and registers the describing
XAMs, so switching models is — as the thesis argues — a catalog swap, not
an optimizer rewrite.
"""

from __future__ import annotations

from typing import Optional

from ..algebra.model import NULL, NestedTuple
from ..engine.storage import Store
from ..summary.enhanced import build_enhanced_summary
from ..summary.path_summary import PathSummary
from ..xmldata.ids import ORDERED, STRUCTURAL, id_of
from ..xmldata.node import ATTRIBUTE, ELEMENT, TEXT, Document
from .catalog import Catalog

__all__ = [
    "build_node_store",
    "build_structural_store",
    "build_tag_partitioned_store",
    "build_path_partitioned_store",
]


def _name_dictionary(doc: Document) -> dict[str, int]:
    labels = sorted(
        {n.label for n in doc.nodes() if n.kind in (ELEMENT, ATTRIBUTE)}
    )
    return {label: number for number, label in enumerate(labels, start=1)}


def build_node_store(doc: Document, store: Store, catalog: Catalog) -> list[str]:
    """Native model #1: one ``main`` entry per node, parent pointers."""
    names = _name_dictionary(doc)
    main, text = [], []
    for node in doc.nodes():
        parent = node.parent
        parent_id = (
            id_of(parent, ORDERED) if parent is not None and parent.kind != "document" else NULL
        )
        if node.kind == TEXT:
            main.append(
                NestedTuple(
                    {
                        "ID": id_of(node, ORDERED),
                        "parentID": parent_id,
                        "kind": "text",
                        "nameID": NULL,
                    }
                )
            )
            text.append(NestedTuple({"ID": id_of(node, ORDERED), "text": node.text}))
        else:
            main.append(
                NestedTuple(
                    {
                        "ID": id_of(node, ORDERED),
                        "parentID": parent_id,
                        "kind": node.kind,
                        "nameID": names[node.label],
                    }
                )
            )
            if node.kind == ATTRIBUTE:
                text.append(
                    NestedTuple({"ID": id_of(node, ORDERED), "text": node.text})
                )
    store.add("main", main, order="ID")
    store.add("text", text, order="ID")
    store.add(
        "name",
        [NestedTuple({"nameID": num, "name": label}) for label, num in names.items()],
    )
    catalog.register("node_store", "//*[id:o, tag, val]", relation="main", kind="storage")
    return ["main", "text", "name"]


def build_structural_store(doc: Document, store: Store, catalog: Catalog) -> list[str]:
    """Native model #2: structural ``(pre, post, depth)`` IDs; no parent
    pointers — structural joins connect levels."""
    names = _name_dictionary(doc)
    main, text = [], []
    for node in doc.nodes():
        if node.kind == TEXT:
            text.append(NestedTuple({"ID": id_of(node, STRUCTURAL), "text": node.text}))
            continue
        main.append(
            NestedTuple(
                {
                    "ID": id_of(node, STRUCTURAL),
                    "kind": node.kind,
                    "nameID": names[node.label],
                }
            )
        )
        if node.kind == ATTRIBUTE:
            text.append(NestedTuple({"ID": id_of(node, STRUCTURAL), "text": node.text}))
    store.add("main", main, order="ID")
    store.add("text", text, order="ID")
    store.add(
        "name",
        [NestedTuple({"nameID": num, "name": label}) for label, num in names.items()],
    )
    catalog.register(
        "structural_store", "//*[id:s, tag, val]", relation="main", kind="storage"
    )
    return ["main", "text", "name"]


def build_tag_partitioned_store(
    doc: Document, store: Store, catalog: Catalog
) -> list[str]:
    """Native model #3: per-tag collections of structural IDs (the indexes
    Timber and Natix use), tag moved from data into metadata."""
    by_tag: dict[str, list[NestedTuple]] = {}
    text = []
    for node in doc.nodes():
        if node.kind == ELEMENT:
            by_tag.setdefault(node.label, []).append(
                NestedTuple({"ID": id_of(node, STRUCTURAL)})
            )
        elif node.kind in (ATTRIBUTE, TEXT):
            owner = node.parent
            if owner is not None:
                text.append(
                    NestedTuple({"ID": id_of(node, STRUCTURAL), "text": node.text})
                )
    names = []
    for tag, rows in sorted(by_tag.items()):
        relation = f"tag_{tag}"
        store.add(relation, rows, order="ID")
        names.append(relation)
        catalog.register(
            relation, f"//{tag}[id:s]", relation=relation, kind="storage"
        )
    store.add("text", text, order="ID")
    names.append("text")
    return names


def build_path_partitioned_store(
    doc: Document,
    store: Store,
    catalog: Catalog,
    summary: Optional[PathSummary] = None,
    with_values: bool = True,
) -> list[str]:
    """Native model #4: one relation per rooted path, IDs in document
    order; value paths (``#text`` / attributes) store ``(ID, value)``.

    The registered XAMs use the precise ``[Tag=c]``-chain description the
    thesis prefers (Figure 2.14(b)) — one XAM per simple path.
    """
    if summary is None:
        summary = build_enhanced_summary(doc)
    rows_by_path: dict[int, list[NestedTuple]] = {snode.number: [] for snode in summary.nodes()}
    for node in doc.nodes():
        snode = summary.node_for(node)
        if snode is None:
            raise ValueError("document does not conform to the provided summary")
        if node.kind == ELEMENT:
            rows_by_path[snode.number].append(
                NestedTuple({"ID": id_of(node, STRUCTURAL)})
            )
        elif with_values and node.kind in (ATTRIBUTE, TEXT):
            rows_by_path[snode.number].append(
                NestedTuple({"ID": id_of(node, STRUCTURAL), "value": node.text})
            )
    names = []
    for snode in summary.nodes():
        rows = rows_by_path[snode.number]
        relation = f"path_{snode.number}"
        store.add(relation, rows, order="ID")
        names.append(relation)
        catalog.register(
            relation,
            _path_xam_text(snode),
            relation=relation,
            kind="storage",
            path_number=snode.number,
        )
    return names


def _path_xam_text(snode) -> str:
    """The Figure 2.14(b) XAM for one summary path: a ``/``-chain of
    ``[Tag=c]`` nodes whose last node stores the structural ID (and the
    value, for attribute/text paths)."""
    labels = snode.path_labels()
    pieces = []
    for position, label in enumerate(labels):
        last = position == len(labels) - 1
        if not last:
            pieces.append(f"/{label}")
        elif label == "#text" or label.startswith("@"):
            pieces.append(f"/{label}[id:s, val]")
        else:
            pieces.append(f"/{label}[id:s]")
    return "".join(pieces)
