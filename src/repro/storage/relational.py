"""Relational XML storage models (thesis §2.1.1 / §2.3.1).

Every builder shreds a document into base relations inside a
:class:`~repro.engine.storage.Store` and registers the XAMs describing the
resulting structures in a :class:`~repro.storage.catalog.Catalog`:

* :func:`build_edge_store` — the Edge approach [Florescu & Kossmann]:
  one ``edge`` tuple per parent-child pair plus a ``value`` table.
* :func:`build_universal_store` — the Universal table: the full outerjoin
  of all Edge tables, one row per element with one (ordinal, flag, target)
  column group per label.
* :func:`build_shredded_store` — schema-driven inlining in the spirit of
  the Basic/Shared/Hybrid schemes [Shanmugasundaram et al.]: one relation
  per element type, with single-occurrence leaf children inlined as value
  columns.  The inlining decisions are driven by the enhanced summary
  (the thesis' storage examples in Table 2.1/2.2 — ``yearValue`` and
  ``titleValue`` inlined into ``book``), standing in for the DTD the
  original used.
* :func:`build_xrel_store` — XRel/XParent-style path tables: a ``path``
  relation numbering all rooted paths plus ``element``/``attribute``/
  ``text`` relations keyed by pathID and (start, end) region IDs.
"""

from __future__ import annotations

from typing import Optional

from ..algebra.model import NULL, NestedTuple
from ..core.xam import DESCENDANT, CHILD, JOIN, Pattern, PatternNode
from ..engine.storage import Store
from ..summary.enhanced import build_enhanced_summary
from ..summary.path_summary import PathSummary
from ..xmldata.ids import ORDERED, STRUCTURAL, id_of
from ..xmldata.node import ATTRIBUTE, ELEMENT, TEXT, Document, XMLNode
from .catalog import Catalog

__all__ = [
    "build_edge_store",
    "build_universal_store",
    "build_shredded_store",
    "build_xrel_store",
]


# ---------------------------------------------------------------------------
# Edge
# ---------------------------------------------------------------------------

def build_edge_store(doc: Document, store: Store, catalog: Catalog) -> list[str]:
    """The Edge relation: (source, target, ordinal, name, flag) + values."""
    edges = []
    values = []
    for node in doc.nodes():
        parent = node.parent
        if parent is None:
            continue
        source = id_of(parent, ORDERED) if parent.kind != "document" else 0
        if node.kind == TEXT:
            values.append(
                NestedTuple({"vID": id_of(node, ORDERED), "value": node.text})
            )
            continue
        ordinal = parent.children.index(node) + 1
        edges.append(
            NestedTuple(
                {
                    "source": source,
                    "target": id_of(node, ORDERED),
                    "ordinal": ordinal,
                    "name": node.label,
                    "flag": "attribute" if node.kind == ATTRIBUTE else "element",
                }
            )
        )
        if node.kind == ATTRIBUTE:
            values.append(
                NestedTuple({"vID": id_of(node, ORDERED), "value": node.text})
            )
    store.add("edge", edges)
    store.add("value", values)

    # XAMs of Figure 2.11(a): element access, attribute access, values.
    catalog.register(
        "edge_elements", "//*[id:o, tag, val]", relation="edge", kind="storage"
    )
    elements_pattern = Pattern()
    parent = PatternNode(tag=None, store_id="o")
    child = PatternNode(tag=None, store_id="o", store_tag=True)
    elements_pattern.root.add_child(parent, DESCENDANT, JOIN)
    parent.add_child(child, CHILD, JOIN)
    catalog.register(
        "edge_pairs", elements_pattern.finalize(), relation="edge", kind="storage"
    )
    return ["edge", "value"]


# ---------------------------------------------------------------------------
# Universal table
# ---------------------------------------------------------------------------

def build_universal_store(doc: Document, store: Store, catalog: Catalog) -> list[str]:
    """One wide row per element: (source, ordinal_l, flag_l, target_l, …)
    for every label ``l`` in the document; missing children are ⊥.

    Elements with several same-label children contribute one row per
    combination member (the outerjoin definition of [48]); we keep the
    first child per label, the standard simplification for the shape study.
    """
    labels = sorted(
        {n.label for n in doc.nodes() if n.kind in (ELEMENT, ATTRIBUTE)}
    )
    rows = []
    for node in doc.nodes():
        if node.kind != ELEMENT:
            continue
        attrs: dict = {"source": id_of(node, ORDERED)}
        first: dict[str, XMLNode] = {}
        for position, child in enumerate(node.children):
            if child.kind in (ELEMENT, ATTRIBUTE) and child.label not in first:
                first[child.label] = child
                attrs[f"ordinal_{child.label}"] = position + 1
        for label in labels:
            child = first.get(label)
            if child is None:
                attrs.setdefault(f"ordinal_{label}", NULL)
                attrs[f"flag_{label}"] = NULL
                attrs[f"target_{label}"] = NULL
            else:
                attrs[f"flag_{label}"] = (
                    "attribute" if child.kind == ATTRIBUTE else "element"
                )
                attrs[f"target_{label}"] = id_of(child, ORDERED)
        rows.append(NestedTuple(attrs))
    store.add("universal", rows)

    # Figure 2.11(b): a wide XAM with one optional child per label.
    pattern = Pattern()
    source = PatternNode(tag=None, store_id="o")
    pattern.root.add_child(source, DESCENDANT, JOIN)
    for label in labels:
        child = PatternNode(tag=label, store_id="o")
        source.add_child(child, CHILD, "o")
    catalog.register(
        "universal", pattern.finalize(), relation="universal", kind="storage"
    )
    return ["universal"]


# ---------------------------------------------------------------------------
# Schema-driven shredding (Basic / Shared / Hybrid spirit)
# ---------------------------------------------------------------------------

def _inlinable_children(
    snode, summary: PathSummary
) -> list[str]:
    """Child labels inlined into the parent relation: attributes, plus
    element children that occur at most once (edge annotation ``1``) and
    are leaves (only text below)."""
    inlined = []
    for label, child in snode.children.items():
        if label == "#text":
            continue
        if label.startswith("@"):
            inlined.append(label)
            continue
        only_text = set(child.children) <= {"#text"}
        if child.edge_annotation == "1" and only_text:
            inlined.append(label)
    return inlined


def build_shredded_store(
    doc: Document,
    store: Store,
    catalog: Catalog,
    summary: Optional[PathSummary] = None,
) -> list[str]:
    """One relation per element type with inlined single leaf children —
    the Hybrid-style schema of Table 2.1 (``book(ID, parentID, yearValue,
    titleValue)``…)."""
    if summary is None:
        summary = build_enhanced_summary(doc)

    # decide the inlined columns per element label (union over paths)
    inlined_by_label: dict[str, set[str]] = {}
    for snode in summary.nodes():
        if snode.is_attribute or snode.is_text:
            continue
        inlined_by_label.setdefault(snode.label, set()).update(
            _inlinable_children(snode, summary)
        )

    rows_by_label: dict[str, list[NestedTuple]] = {}
    for node in doc.elements():
        label = node.label
        inlined = inlined_by_label.get(label, set())
        attrs: dict = {"ID": id_of(node, ORDERED)}
        parent = node.parent
        if parent is not None and parent.kind == ELEMENT:
            attrs["parentID"] = id_of(parent, ORDERED)
            attrs["parentType"] = parent.label
        else:
            attrs["parentID"] = NULL
            attrs["parentType"] = NULL
        for column in sorted(inlined):
            attrs[_column_name(column)] = NULL
        for child in node.children:
            if child.kind == ATTRIBUTE and child.label in inlined:
                attrs[_column_name(child.label)] = child.text
            elif child.kind == ELEMENT and child.label in inlined:
                attrs[_column_name(child.label)] = child.value
        rows_by_label.setdefault(label, []).append(NestedTuple(attrs))

    names = []
    for label, rows in rows_by_label.items():
        relation = f"shred_{label}"
        store.add(relation, rows)
        names.append(relation)
        pattern = Pattern()
        element = PatternNode(tag=label, store_id="o")
        pattern.root.add_child(element, DESCENDANT, JOIN)
        for column in sorted(inlined_by_label.get(label, ())):
            child = PatternNode(tag=column, store_value=True)
            element.add_child(child, CHILD, "o")
        catalog.register(relation, pattern.finalize(), relation=relation, kind="storage")
    return names


def _column_name(label: str) -> str:
    return label.lstrip("@") + "Value"


# ---------------------------------------------------------------------------
# XRel / XParent path tables
# ---------------------------------------------------------------------------

def build_xrel_store(
    doc: Document,
    store: Store,
    catalog: Catalog,
    summary: Optional[PathSummary] = None,
) -> list[str]:
    """Path-table storage: ``path(pathID, pathexpr)`` plus region-encoded
    ``element``/``attribute``/``text`` relations pointing into it."""
    if summary is None:
        summary = build_enhanced_summary(doc)
    paths = [
        NestedTuple({"pathID": snode.number, "pathexpr": snode.path_string()})
        for snode in summary.nodes()
    ]
    elements, attributes, texts = [], [], []
    for node in doc.nodes():
        snode = summary.node_for(node)
        if snode is None:
            raise ValueError("document does not conform to the provided summary")
        sid = id_of(node, STRUCTURAL)
        base = {"pathID": snode.number, "start": sid.pre, "end": sid.post}
        if node.kind == ELEMENT:
            elements.append(NestedTuple(base))
        elif node.kind == ATTRIBUTE:
            attributes.append(NestedTuple({**base, "value": node.text}))
        elif node.kind == TEXT:
            texts.append(NestedTuple({**base, "value": node.text}))
    store.add("path", paths)
    store.add("element", elements, order="start")
    store.add("attribute", attributes, order="start")
    store.add("text", texts, order="start")

    catalog.register("xrel_elements", "//*[id:s, tag]", relation="element", kind="storage")
    for label in sorted({n.label for n in doc.attributes()}):
        catalog.register(
            f"xrel_attr_{label.lstrip('@')}",
            f"//*{{/{label}[id:s, val]}}",
            relation="attribute",
            kind="storage",
        )
    return ["path", "element", "attribute", "text"]
