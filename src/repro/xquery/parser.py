"""Parser for the XQuery subset Q (thesis §3.2).

Recursive descent over a hand-rolled token stream.  Accepted forms::

    //book/title
    doc("bib.xml")//book[year/text() = "1999"]/author
    for $x in //item, $y in $x/name where $x/quantity = 2 return $y
    for $x in //item return <res>{ $x/name/text(), $x//keyword }</res>

Element constructors switch the lexer into markup mode: ``<tag>`` opens a
constructor whose content is literal text plus ``{ … }`` enclosed
expressions, closed by ``</tag>``.
"""

from __future__ import annotations

import re
from typing import Optional

from ..errors import ReproError
from .ast import (
    DOC_ROOT,
    Comparison,
    ElementConstructor,
    Expr,
    FLWR,
    ForBinding,
    Literal,
    PathExpr,
    SequenceExpr,
    Step,
    StepPredicate,
)

__all__ = ["parse_query", "XQueryParseError"]


class XQueryParseError(ReproError, ValueError):
    """Malformed query text.  Subclasses :class:`~repro.errors.ReproError`
    so callers can split parse failures from execution faults (the CLI
    maps them to distinct exit codes)."""


_TOKEN = re.compile(
    r"""
    \s*(
        \$\w+|                       # variables
        doc\s*\(|document\s*\(|      # doc("…")
        "(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*'|
        //|/|\*|\[|\]|\(|\)|,|
        !=|<=|>=|=|<|>|
        \d+\.\d+|\d+|
        @?\w[\w.\-]*
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"for", "in", "where", "and", "return"}
_COMPARATORS = {"=", "!=", "<", "<=", ">", ">="}
_WORD_COMPARATORS = {"eq": "=", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}


class _Lexer:
    """Token stream with raw-text access for constructor content.

    The peek cache is keyed to the position it was computed at, so direct
    ``pos`` manipulation (constructor-content scanning) safely invalidates
    it.
    """

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self._peeked: Optional[str] = None
        self._peeked_at = -1
        self._peek_origin = -1

    def skip_ws(self) -> None:
        while self.pos < len(self.source) and self.source[self.pos].isspace():
            self.pos += 1

    def at_constructor(self) -> bool:
        self.skip_ws()
        return (
            self.pos < len(self.source)
            and self.source[self.pos] == "<"
            and not self.source.startswith("</", self.pos)
            and re.match(r"<\w", self.source[self.pos:]) is not None
        )

    def peek(self) -> Optional[str]:
        if self._peeked is not None and self._peek_origin == self.pos:
            return self._peeked
        match = _TOKEN.match(self.source, self.pos)
        if match is None:
            self._peeked = None
            return None
        self._peeked = match.group(1)
        self._peeked_at = match.end()
        self._peek_origin = self.pos
        return self._peeked

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise XQueryParseError(
                f"unexpected end of query at offset {self.pos}"
            )
        self.pos = self._peeked_at
        self._peeked = None
        return token

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.next()
            return True
        return False

    def expect(self, token: str) -> None:
        found = self.next()
        if found != token:
            raise XQueryParseError(f"expected {token!r}, found {found!r}")

    def done(self) -> bool:
        return self.peek() is None and not self.at_constructor()


def parse_query(source: str) -> Expr:
    lexer = _Lexer(source)
    expr = _parse_expr(lexer)
    lexer.skip_ws()
    if lexer.pos < len(lexer.source) and lexer.peek() is not None:
        raise XQueryParseError(
            f"trailing content at offset {lexer.pos}: {lexer.source[lexer.pos:lexer.pos+20]!r}"
        )
    return expr


def _parse_expr(lexer: _Lexer) -> Expr:
    items = [_parse_single(lexer)]
    while lexer.accept(","):
        items.append(_parse_single(lexer))
    if len(items) == 1:
        return items[0]
    return SequenceExpr(tuple(items))


def _parse_single(lexer: _Lexer) -> Expr:
    if lexer.at_constructor():
        return _parse_constructor(lexer)
    token = lexer.peek()
    if token == "for":
        return _parse_flwr(lexer)
    if token == "(":
        lexer.next()
        inner = _parse_expr(lexer)
        lexer.expect(")")
        return inner
    return _parse_path(lexer)


def _parse_flwr(lexer: _Lexer) -> FLWR:
    lexer.expect("for")
    bindings = []
    while True:
        var = lexer.next()
        if not var.startswith("$"):
            raise XQueryParseError(f"expected a variable, found {var!r}")
        lexer.expect("in")
        path = _parse_path(lexer)
        bindings.append(ForBinding(var[1:], path))
        if not lexer.accept(","):
            break
    where: list[Comparison] = []
    if lexer.accept("where"):
        while True:
            where.append(_parse_comparison(lexer))
            if not lexer.accept("and"):
                break
    lexer.expect("return")
    ret = _parse_expr_no_comma(lexer)
    return FLWR(tuple(bindings), tuple(where), ret)


def _parse_expr_no_comma(lexer: _Lexer) -> Expr:
    """A return clause: a single expression (commas at this level separate
    outer list items, so sequencing must be parenthesized or bracketed in
    a constructor — standard XQuery precedence)."""
    return _parse_single(lexer)


def _parse_comparison(lexer: _Lexer) -> Comparison:
    left = _parse_path(lexer)
    op = lexer.next()
    op = _WORD_COMPARATORS.get(op, op)
    if op not in _COMPARATORS:
        raise XQueryParseError(f"expected a comparator, found {op!r}")
    token = lexer.peek()
    if token is None:
        raise XQueryParseError("missing comparison right-hand side")
    if token.startswith("$") or token in ("/", "//") or token.startswith("doc"):
        right: object = _parse_path(lexer)
    else:
        right = _parse_constant(lexer.next())
    return Comparison(left, op, right)


def _parse_constant(token: str):
    if token and token[0] in "\"'":
        return token[1:-1]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    raise XQueryParseError(f"expected a constant, found {token!r}")


def _parse_path(lexer: _Lexer) -> PathExpr:
    token = lexer.peek()
    document = None
    if token is None:
        raise XQueryParseError("expected a path expression")
    if token.startswith("$"):
        lexer.next()
        root = token[1:]
    elif token in ("doc(", "document(", "doc (", "document ("):
        lexer.next()
        name = lexer.next()
        document = name[1:-1] if name and name[0] in "\"'" else name
        lexer.expect(")")
        root = DOC_ROOT
    elif token in ("/", "//"):
        root = DOC_ROOT
    else:
        raise XQueryParseError(f"expected a path expression, found {token!r}")
    steps = _parse_steps(lexer)
    if root != DOC_ROOT and not steps:
        return PathExpr(root)
    if root == DOC_ROOT and not steps:
        raise XQueryParseError("absolute path without steps")
    return PathExpr(root, tuple(steps), document)


def _parse_steps(lexer: _Lexer) -> list[Step]:
    steps = []
    while True:
        token = lexer.peek()
        if token not in ("/", "//"):
            break
        axis = lexer.next()
        test = lexer.next()
        if test == "*":
            pass
        elif test == "text" and lexer.accept("("):
            # ``text()`` the function; a bare ``text`` step is an element
            # test (XMark really has <text> elements)
            lexer.expect(")")
            test = "text()"
        elif re.fullmatch(r"@?\w[\w.\-]*", test):
            pass
        else:
            raise XQueryParseError(f"bad node test {test!r}")
        predicates = []
        while lexer.accept("["):
            predicates.append(_parse_step_predicate(lexer))
            lexer.expect("]")
        steps.append(Step(axis, test, tuple(predicates)))
    return steps


def _parse_step_predicate(lexer: _Lexer) -> StepPredicate:
    # a relative path, optionally compared with a constant
    token = lexer.peek()
    if token in ("/", "//"):
        path = PathExpr("", tuple(_parse_steps(lexer)))
    else:
        # leading name means a child step: [author] ≡ [./author]
        test = lexer.next()
        if test == "text" and lexer.accept("("):
            lexer.expect(")")
            test = "text()"
        first = Step("/", test)
        rest = _parse_steps(lexer)
        path = PathExpr("", (first, *rest))
    token = lexer.peek()
    if token in _COMPARATORS or token in _WORD_COMPARATORS:
        op = _WORD_COMPARATORS.get(lexer.next(), token)
        value = _parse_constant(lexer.next())
        return StepPredicate(path, op, value)
    return StepPredicate(path)


# ---------------------------------------------------------------------------
# Element constructors
# ---------------------------------------------------------------------------

def _parse_constructor(lexer: _Lexer) -> ElementConstructor:
    lexer.skip_ws()
    match = re.match(r"<(\w[\w.\-]*)\s*>", lexer.source[lexer.pos:])
    if match is None:
        raise XQueryParseError(f"malformed constructor at offset {lexer.pos}")
    tag = match.group(1)
    lexer.pos += match.end()
    children: list[Expr] = []
    closing = f"</{tag}>"
    while True:
        lexer.skip_ws()
        if lexer.source.startswith(closing, lexer.pos):
            lexer.pos += len(closing)
            return ElementConstructor(tag, tuple(children))
        if lexer.source.startswith("{", lexer.pos):
            lexer.pos += 1
            children.append(_parse_expr(lexer))
            lexer.skip_ws()
            if not lexer.source.startswith("}", lexer.pos):
                raise XQueryParseError(
                    f"unterminated enclosed expression at offset {lexer.pos}"
                )
            lexer.pos += 1
        elif lexer.at_constructor():
            children.append(_parse_constructor(lexer))
        else:
            end = len(lexer.source)
            for stop in ("{", "<"):
                found = lexer.source.find(stop, lexer.pos)
                if found != -1:
                    end = min(end, found)
            if end == lexer.pos:
                raise XQueryParseError(
                    f"unterminated constructor <{tag}> at offset {lexer.pos}"
                )
            text = lexer.source[lexer.pos:end]
            if text.strip():
                # keep interior spacing; trim only the indentation-style
                # leading/trailing newlines around the content
                children.append(Literal(text.strip("\n\r\t")))
            lexer.pos = end
