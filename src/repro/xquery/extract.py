"""Pattern extraction: XQuery → maximal query XAMs (thesis Chapter 3).

The thesis translates Q queries to the nested algebra (§3.3.1–3.3.2) and
then isolates pattern-shaped subexpressions (§3.3.3).  This module
implements the composition of the two steps directly: it walks the query
and *builds* the patterns the algebraic isolation would produce, together
with

* the cross-pattern join predicates (value joins / cartesian products
  between patterns with unrelated roots — the ``×`` of Fig. 3.1),
* the tagging template driving XML construction,
* the **compensating selections** for dependencies tree patterns cannot
  express (the ``(d.ID ≠ ⊥) ∨ (d.ID = ⊥ ∧ e.Cont = ⊥)`` example of §3.1).

The resulting patterns are *maximal*: a nested for-where-return block whose
variable is rooted in an outer variable grafts into the outer pattern as
an optional (outerjoin) nested subtree, so one pattern spans query blocks —
the property distinguishing this extractor from per-XPath approaches.

Edge-semantics rules implemented (matching §3.3.2's translations):

* top-level ``for`` binding paths: ``j`` edges (iteration requires a
  match);
* ``where p θ c`` and step qualifiers ``[p]`` / ``[p = c]``: ``s``
  (semijoin) edges with a value formula on the last node — existential
  filters leaving the tuple arity unchanged;
* everything extracted inside a ``return`` that constructs elements:
  ``no`` (nest-outerjoin) edges — an element is constructed even when the
  sub-expression is empty, and repeated bindings group under their
  ancestor (the σ/⟕ⁿ of the ``xq₃`` rule);
* a bare (non-constructing) return path: ``nj`` — grouped but required,
  per the ``xq₂`` rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..algebra.formulas import Formula
from ..algebra.model import NestedTuple
from ..algebra.operators import (
    Operator,
    Product,
    Select,
    TemplateAttr,
    TemplateElement,
    ValueJoin,
    XMLize,
)
from ..algebra.predicates import And, Attr, Compare, IsNull, NotNull, Or
from ..core.xam import (
    CHILD,
    DESCENDANT,
    JOIN,
    NEST,
    NEST_OUTER,
    SEMI,
    Pattern,
    PatternNode,
)
from .ast import (
    Comparison,
    ElementConstructor,
    Expr,
    FLWR,
    Literal,
    PathExpr,
    SequenceExpr,
    Step,
)

__all__ = [
    "ExtractionUnit",
    "Extraction",
    "extract",
    "attribute_path",
    "assemble_plan",
    "PatternAccess",
]


class PatternAccess(Operator):
    """A logical-plan leaf standing for 'the tuples of this query XAM'.

    The ULoad layer later replaces it either by direct evaluation over the
    base store, or by an equivalent plan over materialized views (the
    rewriting of Chapter 5) — this indirection *is* physical data
    independence.
    """

    def __init__(self, pattern: Pattern, index: int):
        self.pattern = pattern
        self.index = index

    @property
    def context_key(self) -> str:
        """The binding name the ULoad layer publishes this pattern's
        tuples under (also the PScan target when compiled physically)."""
        return f"__pattern_{self.index}"

    def estimated_cardinality(self, ctx):
        return ctx.statistics.pattern_cardinality(self.pattern)

    def schema(self) -> list[str]:
        from ..core.embedding import subtree_attribute_names

        names: list[str] = []
        for edge in self.pattern.root.edges:
            names.extend(subtree_attribute_names(edge.child))
        return names

    def evaluate(self, context=None):
        key = self.context_key
        if context is None or key not in context:
            raise KeyError(
                f"pattern access #{self.index} not bound; supply context[{key!r}]"
            )
        return list(context[key])

    def label(self) -> str:
        return f"PatternAccess#{self.index}[{self.pattern.to_text()}]"


@dataclass
class ExtractionUnit:
    """Patterns + glue for one top-level query expression."""

    patterns: list[Pattern] = field(default_factory=list)
    #: variable → (pattern index, node name)
    var_nodes: dict[str, tuple[int, str]] = field(default_factory=dict)
    #: cross-pattern value predicates: (pidx₁, path₁, op, pidx₂, path₂)
    join_predicates: list[tuple[int, str, str, int, str]] = field(default_factory=list)
    #: unexpressible dependencies: (guard pidx, guard ID path, dependent
    #: pidx, dependent attr path) — σ (guard ≠ ⊥) ∨ (dependent = ⊥)
    compensations: list[tuple[int, str, int, str]] = field(default_factory=list)
    template: Optional[TemplateElement] = None
    #: flat outputs when the query constructs nothing: (pidx, attr path)
    outputs: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class Extraction:
    """The full result of pattern extraction: one unit per top-level
    query expression (queries are usually a single unit)."""

    units: list[ExtractionUnit]

    @property
    def patterns(self) -> list[Pattern]:
        return [pattern for unit in self.units for pattern in unit.patterns]


def attribute_path(pattern: Pattern, node: PatternNode, attr: str) -> str:
    """The nesting path addressing ``node.attr`` inside the pattern's
    output tuples: one path segment per nest edge on the root→node chain,
    then the flat attribute name."""
    segments: list[str] = []
    walk = node
    while walk.parent_edge is not None:
        if walk.parent_edge.nested:
            segments.append(walk.name)
        walk = walk.parent_edge.parent
    segments.reverse()
    segments.append(f"{node.name}.{attr}")
    return "/".join(segments)


# ---------------------------------------------------------------------------
# The extractor
# ---------------------------------------------------------------------------

class _Extractor:
    def __init__(self) -> None:
        self.unit = ExtractionUnit()
        self._counter = 0
        #: extraction log: (attr ref, pattern index, node name) per
        #: return path — consumed by the compensation analysis
        self._extracted_refs: list[tuple[TemplateAttr, int, str]] = []

    # -- naming ------------------------------------------------------------

    def _fresh_name(self) -> str:
        self._counter += 1
        return f"n{self._counter}"

    def _new_pattern(self) -> int:
        pattern = Pattern()
        self.unit.patterns.append(pattern)
        return len(self.unit.patterns) - 1

    def _node(self, pidx: int, name: str) -> PatternNode:
        pattern = self.unit.patterns[pidx]
        if name == pattern.root.name:
            return pattern.root
        return pattern.node_by_name(name)

    # -- chains ---------------------------------------------------------------

    def _add_chain(
        self,
        pidx: int,
        anchor: PatternNode,
        steps: Sequence[Step],
        semantics: str,
        chain_semantics: Optional[str] = None,
    ) -> PatternNode:
        """Attach a chain of steps below ``anchor``.

        ``semantics`` applies to the first edge, ``chain_semantics`` (default:
        same) to the rest.  Step qualifiers become semijoin branches.
        Returns the node of the last step.
        """
        if chain_semantics is None:
            chain_semantics = semantics
        node = anchor
        for position, step in enumerate(steps):
            edge_semantics = semantics if position == 0 else chain_semantics
            axis = CHILD if step.axis == "/" else DESCENDANT
            tag = None if step.test == "*" else step.test
            child = PatternNode(tag=tag, name=self._fresh_name())
            node.add_child(child, axis, edge_semantics)
            node = child
            for qualifier in step.predicates:
                self._add_qualifier(pidx, node, qualifier)
        return node

    def _add_qualifier(self, pidx: int, anchor: PatternNode, qualifier) -> None:
        steps = list(qualifier.path.navigation_steps())
        if not steps:
            # ``[text() = c]`` — a value condition on the anchor itself
            if qualifier.op is not None:
                anchor.value_formula = anchor.value_formula.conjoin(
                    Formula.compare(qualifier.op, qualifier.value)
                )
            return
        last = self._add_chain(pidx, anchor, steps, SEMI)
        if qualifier.op is not None:
            last.value_formula = last.value_formula.conjoin(
                Formula.compare(qualifier.op, qualifier.value)
            )

    # -- entry ------------------------------------------------------------------

    def run(self, expr: Expr) -> ExtractionUnit:
        if isinstance(expr, PathExpr):
            self._extract_bare_path(expr)
        elif isinstance(expr, FLWR):
            self._extract_flwr(expr, enclosing_var=None, constructing=False)
            self.unit.template = self._build_template(expr.ret, top=True)
        elif isinstance(expr, ElementConstructor):
            raise ValueError(
                "a top-level bare constructor has no data needs; wrap it in a query"
            )
        else:
            raise TypeError(f"unsupported top-level expression: {expr!r}")
        for pattern in self.unit.patterns:
            pattern.finalize()
        return self.unit

    # -- path queries --------------------------------------------------------------

    def _extract_bare_path(self, path: PathExpr) -> None:
        if not path.is_absolute:
            raise ValueError("a top-level path must be absolute")
        pidx = self._new_pattern()
        pattern = self.unit.patterns[pidx]
        last = self._add_chain(pidx, pattern.root, path.navigation_steps(), JOIN)
        if path.ends_with_text:
            last.store_value = True
            attr = "V"
        else:
            last.store_content = True
            attr = "C"
        last.store_id = "s"
        self.unit.outputs.append((pidx, attribute_path(pattern, last, attr)))

    # -- FLWR blocks ------------------------------------------------------------------

    def _extract_flwr(
        self, flwr: FLWR, enclosing_var: Optional[str], constructing: bool
    ) -> None:
        """Install bindings and where clauses; return handled separately.

        ``enclosing_var`` is set when this block sits inside another
        block's return (its bindings graft as optional nested subtrees).
        """
        nested = enclosing_var is not None
        for binding in flwr.bindings:
            pidx, anchor = self._resolve_root(binding.path)
            semantics = NEST_OUTER if nested and constructing else (
                NEST if nested else JOIN
            )
            node = self._add_chain(
                pidx,
                anchor,
                binding.path.navigation_steps(),
                semantics,
                chain_semantics=semantics if nested else JOIN,
            )
            node.store_id = "s"
            self.unit.var_nodes[binding.var] = (pidx, node.name)
        for comparison in flwr.where:
            self._extract_where(comparison)

    def _resolve_root(self, path: PathExpr) -> tuple[int, PatternNode]:
        if path.is_absolute:
            pidx = self._new_pattern()
            return pidx, self.unit.patterns[pidx].root
        if path.root not in self.unit.var_nodes:
            raise ValueError(f"unbound variable ${path.root}")
        pidx, node_name = self.unit.var_nodes[path.root]
        return pidx, self._node(pidx, node_name)

    def _extract_where(self, comparison: Comparison) -> None:
        if comparison.against_constant:
            pidx, anchor = self._resolve_root(comparison.left)
            steps = list(comparison.left.navigation_steps())
            if steps:
                last = self._add_chain(pidx, anchor, steps, SEMI)
            else:
                last = anchor
            last.value_formula = last.value_formula.conjoin(
                Formula.compare(comparison.op, comparison.right)
            )
            return
        # path θ path: value join — not expressible inside one XAM
        left_pidx, left_anchor = self._resolve_root(comparison.left)
        right_pidx, right_anchor = self._resolve_root(comparison.right)
        left_node = self._value_node(left_pidx, left_anchor, comparison.left)
        right_node = self._value_node(right_pidx, right_anchor, comparison.right)
        self.unit.join_predicates.append(
            (
                left_pidx,
                attribute_path(self.unit.patterns[left_pidx], left_node, "V"),
                comparison.op,
                right_pidx,
                attribute_path(self.unit.patterns[right_pidx], right_node, "V"),
            )
        )

    def _value_node(
        self, pidx: int, anchor: PatternNode, path: PathExpr
    ) -> PatternNode:
        steps = list(path.navigation_steps())
        if steps:
            node = self._add_chain(pidx, anchor, steps, JOIN)
        else:
            node = anchor
        node.store_value = True
        return node

    # -- return clauses / templates -------------------------------------------------------

    def _build_template(self, expr: Expr, top: bool = False) -> Optional[TemplateElement]:
        """Walk a return expression, installing extraction nodes and
        building the tagging template.  Returns None when the query
        constructs nothing (flat outputs recorded instead)."""
        constructing = _constructs_elements(expr)
        pieces = self._walk_return(expr, constructing=constructing)
        if not constructing:
            return None
        if len(pieces) == 1 and isinstance(pieces[0], TemplateElement):
            return pieces[0]
        return TemplateElement("result", pieces)

    def _walk_return(self, expr: Expr, constructing: bool) -> list:
        """Returns template pieces (TemplateElement / TemplateAttr / str)."""
        if isinstance(expr, Literal):
            return [expr.text]
        if isinstance(expr, SequenceExpr):
            pieces: list = []
            for item in expr.items:
                pieces.extend(self._walk_return(item, constructing))
            return pieces
        if isinstance(expr, ElementConstructor):
            children: list = []
            for child in expr.children:
                children.extend(self._walk_return(child, constructing=True))
            return [TemplateElement(expr.tag, children)]
        if isinstance(expr, PathExpr):
            return [self._extract_return_path(expr, constructing)]
        if isinstance(expr, FLWR):
            return self._extract_nested_flwr(expr, constructing)
        raise TypeError(f"unsupported return expression: {expr!r}")

    def _extract_return_path(self, path: PathExpr, constructing: bool):
        pidx, anchor = self._resolve_root(path)
        semantics = NEST_OUTER if constructing else NEST
        steps = list(path.navigation_steps())
        if steps:
            node = self._add_chain(pidx, anchor, steps, semantics)
        else:
            node = anchor
        if path.ends_with_text:
            node.store_value = True
            attr = "V"
        else:
            node.store_content = True
            attr = "C"
        ref_path = attribute_path(self.unit.patterns[pidx], node, attr)
        ref = TemplateAttr(ref_path)
        self._extracted_refs.append((ref, pidx, node.name))
        if not constructing:
            self.unit.outputs.append((pidx, ref_path))
        return ref

    def _extract_nested_flwr(self, flwr: FLWR, constructing: bool) -> list:
        """A for-where-return inside a return clause: graft bindings as
        (optional) nested subtrees spanning the block boundary."""
        outer_vars = set(self.unit.var_nodes)
        # the block is "enclosed" by whatever variable its first binding
        # hangs from (document-rooted bindings start fresh patterns)
        first_root = flwr.bindings[0].path.root
        enclosing = first_root if first_root in outer_vars else None
        self._extract_flwr(flwr, enclosing_var=enclosing or "", constructing=constructing)
        mark = len(self._extracted_refs)
        pieces = self._walk_return(
            flwr.ret, constructing=constructing or _constructs_elements(flwr.ret)
        )
        # Constructors returned by this block repeat once per binding of
        # the block's (first) variable: record the driving collection so
        # the template renderer iterates the right nesting level.
        first_var = flwr.bindings[0].var
        w_pidx, w_name = self.unit.var_nodes[first_var]
        repeat = _collection_path(self._node(w_pidx, w_name))
        if repeat is not None:
            for piece in pieces:
                if isinstance(piece, TemplateElement) and piece.repeat_over is None:
                    piece.repeat_over = repeat
        # Compensations: content extracted from inside this block but
        # anchored at an *outer* variable depends on the block's bindings
        # — a dependency tree patterns cannot express (§3.1), recovered by
        # a selection (guard.ID ≠ ⊥) ∨ (dependent = ⊥).
        block_vars = [b.var for b in flwr.bindings]
        block_nodes = {self.unit.var_nodes[v][1] for v in block_vars}
        for ref, ref_pidx, node_name in self._extracted_refs[mark:]:
            owner = self._anchor_variable(ref_pidx, node_name)
            if owner is None or owner in block_vars:
                continue
            for block_var in block_vars:
                w_pidx, w_name = self.unit.var_nodes[block_var]
                if w_name == node_name:
                    continue
                w_node = self._node(w_pidx, w_name)
                guard = attribute_path(self.unit.patterns[w_pidx], w_node, "ID")
                self.unit.compensations.append((w_pidx, guard, ref_pidx, ref.path))
        del block_nodes
        return pieces

    def _anchor_variable(self, pidx: int, node_name: str) -> Optional[str]:
        """The variable whose node is the nearest ancestor (or the node
        itself) of the named extraction node."""
        by_node = {
            name: var
            for var, (var_pidx, name) in self.unit.var_nodes.items()
            if var_pidx == pidx
        }
        walk: Optional[PatternNode] = self._node(pidx, node_name)
        while walk is not None:
            if walk.name in by_node:
                return by_node[walk.name]
            walk = walk.parent
        return None


def _collection_path(node: PatternNode) -> Optional[str]:
    """Absolute nesting path of the collection containing ``node``'s
    tuples (None when the node's attrs are flat at the top level)."""
    segments: list[str] = []
    walk = node
    while walk.parent_edge is not None:
        if walk.parent_edge.nested:
            segments.append(walk.name)
        walk = walk.parent_edge.parent
    if not segments:
        return None
    segments.reverse()
    return "/".join(segments)


def _constructs_elements(expr: Expr) -> bool:
    if isinstance(expr, ElementConstructor):
        return True
    if isinstance(expr, SequenceExpr):
        return any(_constructs_elements(item) for item in expr.items)
    if isinstance(expr, FLWR):
        return _constructs_elements(expr.ret)
    return False


def _attr_refs(pieces) -> list[TemplateAttr]:
    found: list[TemplateAttr] = []
    for piece in pieces:
        if isinstance(piece, TemplateAttr):
            found.append(piece)
        elif isinstance(piece, TemplateElement):
            found.extend(_attr_refs(piece.children))
    return found


def extract(query: Expr) -> Extraction:
    """Extract maximal query XAMs from a parsed Q query."""
    if isinstance(query, SequenceExpr):
        units = [_Extractor().run(item) for item in query.items]
    else:
        units = [_Extractor().run(query)]
    return Extraction(units)


# ---------------------------------------------------------------------------
# Plan assembly (the Fig. 5.1 "XMLize over value joins over patterns" shape)
# ---------------------------------------------------------------------------

def assemble_plan(unit: ExtractionUnit, apply_compensations: bool = False) -> Operator:
    """The logical plan of one unit: pattern accesses combined by
    products/value joins, then XML construction (or flat outputs).

    ``unit.compensations`` holds the §3.1 compensating selections, e.g.
    ``(d.ID ≠ ⊥) ∨ (e.Cont = ⊥)``.  They matter when a *flattened* view
    (one tuple per (d, e) combination, as the thesis' V₁₁ stores) feeds
    the plan; our nested-tuple pipeline enforces the dependency
    structurally — repeat-scoped template rendering only emits content of
    blocks that produced bindings — so they are off by default and offered
    for the flattened-consumption path (``apply_compensations=True``).
    """
    plan: Operator = PatternAccess(unit.patterns[0], 0)
    for index in range(1, len(unit.patterns)):
        right = PatternAccess(unit.patterns[index], index)
        predicate = _join_predicate_between(unit, index)
        if predicate is None:
            plan = Product(plan, right)
        else:
            plan = ValueJoin(plan, right, predicate)
    if apply_compensations:
        for _guard_pidx, guard_path, _dep_pidx, dep_path in unit.compensations:
            plan = Select(
                plan,
                Or((NotNull(Attr(guard_path)), IsNull(Attr(dep_path)))),
            )
    if unit.template is not None:
        plan = XMLize(plan, unit.template)
    return plan


def _join_predicate_between(unit: ExtractionUnit, right_index: int):
    """Value-join predicates connecting pattern ``right_index`` to the
    already-joined prefix (patterns 0..right_index-1)."""
    parts = []
    for left_pidx, left_path, op, right_pidx, right_path in unit.join_predicates:
        if right_pidx == right_index and left_pidx < right_index:
            parts.append(Compare(Attr(left_path, 0), op, Attr(right_path, 1)))
        elif left_pidx == right_index and right_pidx < right_index:
            flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
            parts.append(Compare(Attr(right_path, 0), flipped, Attr(left_path, 1)))
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


def bind_patterns(
    unit: ExtractionUnit, results: Sequence[Sequence[NestedTuple]]
) -> dict[str, list[NestedTuple]]:
    """Evaluation context binding each PatternAccess leaf to tuples."""
    return {
        f"__pattern_{index}": list(tuples) for index, tuples in enumerate(results)
    }
