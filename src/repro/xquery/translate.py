"""Algebraic translation of Q queries (thesis §3.3.1–3.3.2).

Path expressions translate to structural-join plans over tag-derived
collections, following the ``full``/``alg`` rules of §3.3.1 literally:

* ``full(d//a) = R_a`` — a scan of the tag-derived collection;
* ``full(d/a)`` subtracts non-root elements via the set-difference trick;
* ``full(q//a) = full(q) ⨝≺≺ R_a`` (``⨝≺`` for ``/``);
* ``full(q[text() = c]) = σ_{V=c}(full(q))``;
* qualifiers ``q₁[q₂]`` become structural semijoins;
* ``alg`` projects the value (for ``text()``) or the serialized content.

For full FLWR queries, ``alg_query`` returns the plan the §3.3.3
isolation step would leave standing: XML construction over value joins over
maximal pattern accesses — produced by :mod:`repro.xquery.extract`, which
composes the §3.3.2 translation rules with the §3.3.3 equivalences.

``collections_context`` supplies the tag-derived collections ``R_t`` /
``R_*`` of Definition 2.2.1 so path plans can be executed directly.
"""

from __future__ import annotations

from typing import Optional

from ..algebra.operators import (
    Difference,
    Operator,
    Project,
    Scan,
    Select,
    StructuralJoin,
)
from ..algebra.predicates import Attr, Compare, Const
from ..core.semantics import tag_derived_collection
from ..xmldata.node import Document
from .ast import Expr, FLWR, PathExpr, SequenceExpr, StepPredicate
from .extract import assemble_plan, extract

__all__ = [
    "collections_context",
    "full_path",
    "alg_path",
    "alg_query",
]

_COLLECTION_COLUMNS = ["ID", "Val", "Tag", "Cont"]


def collections_context(doc: Document) -> dict:
    """Evaluation context holding ``R_*``, ``R_@*`` and every ``R_t``."""
    context = {
        "R_*": tag_derived_collection(doc),
        "R_@*": tag_derived_collection(doc, attributes=True),
    }
    seen_elements = set()
    seen_attributes = set()
    for node in doc.nodes():
        if node.kind == "element" and node.label not in seen_elements:
            seen_elements.add(node.label)
            context[f"R_{node.label}"] = tag_derived_collection(doc, node.label)
        elif node.kind == "attribute" and node.label not in seen_attributes:
            seen_attributes.add(node.label)
            context[f"R_{node.label}"] = tag_derived_collection(
                doc, node.label, attributes=True
            )
    return context


class _StepCounter:
    def __init__(self) -> None:
        self.count = 0

    def fresh(self) -> str:
        self.count += 1
        return f"s{self.count}"


def _collection_scan(test: str, alias: str) -> Operator:
    """Scan the tag-derived collection for a node test, with attributes
    qualified by ``alias`` so repeated occurrences stay distinct."""
    if test == "*":
        name = "R_*"
    else:
        name = f"R_{test}"
    renames = {column: f"{alias}.{column}" for column in _COLLECTION_COLUMNS}
    scan = Scan(name, _COLLECTION_COLUMNS, missing_ok=True)
    return Project(scan, _COLLECTION_COLUMNS, renames=renames)


def _root_only(test: str, alias: str) -> Operator:
    """``full(d/a)``: keep only elements without a parent element — the
    set-difference construction of §3.3.1 (e₁ \\ π(e₂ ⨝≺ e₃))."""
    base = _collection_scan(test, alias)
    parents = _collection_scan("*", f"{alias}_p")
    children = _collection_scan(test, alias)
    pairs = StructuralJoin(
        parents,
        children,
        f"{alias}_p.ID",
        f"{alias}.ID",
        axis="child",
        kind="j",
    )
    non_roots = Project(pairs, [f"{alias}.{c}" for c in _COLLECTION_COLUMNS])
    return Difference(base, non_roots)


def full_path(path: PathExpr, counter: Optional[_StepCounter] = None) -> tuple[Operator, str]:
    """``full(q)`` for an absolute path: the plan plus the alias of the
    return node's collection."""
    if not path.is_absolute:
        raise ValueError("full_path translates absolute paths; bind variables first")
    counter = counter or _StepCounter()
    steps = list(path.navigation_steps())
    if not steps:
        raise ValueError("empty path")
    plan: Optional[Operator] = None
    alias = ""
    for position, step in enumerate(steps):
        step_alias = counter.fresh()
        if position == 0:
            plan = (
                _collection_scan(step.test, step_alias)
                if step.axis == "//"
                else _root_only(step.test, step_alias)
            )
        else:
            right = _collection_scan(step.test, step_alias)
            plan = StructuralJoin(
                plan,
                right,
                f"{alias}.ID",
                f"{step_alias}.ID",
                axis="child" if step.axis == "/" else "descendant",
                kind="j",
            )
        alias = step_alias
        for qualifier in step.predicates:
            plan = _apply_qualifier(plan, alias, qualifier, counter)
    assert plan is not None
    return plan, alias


def _apply_qualifier(
    plan: Operator, alias: str, qualifier: StepPredicate, counter: _StepCounter
) -> Operator:
    steps = list(qualifier.path.navigation_steps())
    if not steps:
        # ``[text() = c]`` on the anchor itself: σ_{V=c}
        if qualifier.op is not None:
            return Select(
                plan,
                Compare(Attr(f"{alias}.Val"), qualifier.op, Const(qualifier.value)),
            )
        return plan
    # build the branch plan and semijoin it against the anchor
    branch: Optional[Operator] = None
    branch_alias = alias
    for position, step in enumerate(steps):
        step_alias = counter.fresh()
        right = _collection_scan(step.test, step_alias)
        anchor_attr = f"{branch_alias}.ID"
        axis = "child" if step.axis == "/" else "descendant"
        if position == 0:
            branch = right
            first_axis = axis
        else:
            branch = StructuralJoin(
                branch, right, anchor_attr, f"{step_alias}.ID", axis=axis, kind="j"
            )
        branch_alias = step_alias
    assert branch is not None
    if qualifier.op is not None:
        branch = Select(
            branch,
            Compare(Attr(f"{branch_alias}.Val"), qualifier.op, Const(qualifier.value)),
        )
    return StructuralJoin(
        plan,
        branch,
        f"{alias}.ID",
        _first_alias_attr(branch),
        axis=first_axis,
        kind="s",
    )


def _first_alias_attr(branch: Operator) -> str:
    """The ID attribute of the branch's first (topmost) step."""
    schema = branch.schema()
    for column in schema:
        if column.endswith(".ID"):
            return column
    raise AssertionError("branch plan without ID attribute")


def alg_path(path: PathExpr) -> Operator:
    """``alg(q)``: duplicate-free projection of the value (``text()``) or
    the serialized content of the return node (§3.3.1's convention)."""
    plan, alias = full_path(path)
    attr = f"{alias}.Val" if path.ends_with_text else f"{alias}.Cont"
    return Project(plan, [attr], dedup=True)


def alg_query(query: Expr) -> list[Operator]:
    """``alg`` for arbitrary Q queries: one plan per top-level unit, in the
    post-isolation shape (construction over joins over pattern accesses)."""
    if isinstance(query, PathExpr):
        return [alg_path(query)]
    if isinstance(query, (FLWR, SequenceExpr)):
        return [assemble_plan(unit) for unit in extract(query).units]
    raise TypeError(f"unsupported query: {query!r}")
