"""AST for the XQuery subset Q (thesis §3.2).

The language:

1. core XPath{/,//,*,[]} absolute path expressions with ``text()`` and
   ``[p]`` / ``[p = c]`` qualifiers (navigation branches comparing a node
   against a constant);
2. variable-rooted relative paths ``$x/p``;
3. concatenation ``e₁, e₂``;
4. element constructors ``<t>{e}</t>``;
5. for-where-return blocks with multiple variables, conjunctive where
   clauses over one or two paths, arbitrarily nested returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "Step",
    "StepPredicate",
    "PathExpr",
    "Comparison",
    "ForBinding",
    "FLWR",
    "ElementConstructor",
    "SequenceExpr",
    "Literal",
    "Expr",
    "DOC_ROOT",
]

#: sentinel root for absolute paths (``doc("…")//a`` or ``//a``)
DOC_ROOT = "$doc"


@dataclass(frozen=True)
class StepPredicate:
    """A ``[...]`` qualifier on a step: a relative path, optionally
    compared to a constant (``[author]``, ``[year/text() = 1999]``)."""

    path: "PathExpr"
    op: Optional[str] = None
    value: Optional[object] = None

    def __repr__(self) -> str:
        if self.op is None:
            return f"[{self.path!r}]"
        return f"[{self.path!r} {self.op} {self.value!r}]"


@dataclass(frozen=True)
class Step:
    """One navigation step: axis (``/`` or ``//``), a node test (a tag,
    ``*``, ``@name`` or ``text()``), and qualifiers."""

    axis: str
    test: str
    predicates: tuple[StepPredicate, ...] = ()

    def __repr__(self) -> str:
        preds = "".join(map(repr, self.predicates))
        return f"{self.axis}{self.test}{preds}"


@dataclass(frozen=True)
class PathExpr:
    """A path: root (a variable name or :data:`DOC_ROOT`) plus steps.

    ``$x`` alone is a PathExpr with no steps.
    """

    root: str
    steps: tuple[Step, ...] = ()
    document: Optional[str] = None  # doc("name") argument, informational

    @property
    def is_absolute(self) -> bool:
        return self.root == DOC_ROOT

    @property
    def ends_with_text(self) -> bool:
        return bool(self.steps) and self.steps[-1].test == "text()"

    def navigation_steps(self) -> tuple[Step, ...]:
        """Steps excluding a trailing ``text()`` call."""
        if self.ends_with_text:
            return self.steps[:-1]
        return self.steps

    def __repr__(self) -> str:
        prefix = "" if self.is_absolute else self.root
        return prefix + "".join(map(repr, self.steps))


@dataclass(frozen=True)
class Comparison:
    """A where-clause conjunct: ``p₁ θ p₂`` or ``p₁ θ c``."""

    left: PathExpr
    op: str
    right: Union[PathExpr, object]

    @property
    def against_constant(self) -> bool:
        return not isinstance(self.right, PathExpr)

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"


@dataclass(frozen=True)
class ForBinding:
    """One ``for $var in path`` clause of a FLWR block."""

    var: str
    path: PathExpr

    def __repr__(self) -> str:
        return f"${self.var} in {self.path!r}"


@dataclass(frozen=True)
class FLWR:
    """A for-where-return block (the Q subset has no ``let``/``order by``)."""

    bindings: tuple[ForBinding, ...]
    where: tuple[Comparison, ...]
    ret: "Expr"

    def __repr__(self) -> str:
        where = f" where {' and '.join(map(repr, self.where))}" if self.where else ""
        return f"for {', '.join(map(repr, self.bindings))}{where} return {self.ret!r}"


@dataclass(frozen=True)
class ElementConstructor:
    """``<tag>{ e1, e2, … }</tag>`` — direct element construction."""

    tag: str
    children: tuple["Expr", ...] = ()

    def __repr__(self) -> str:
        inner = ", ".join(map(repr, self.children))
        return f"<{self.tag}>{{{inner}}}</{self.tag}>"


@dataclass(frozen=True)
class SequenceExpr:
    """Concatenation ``e₁, e₂``."""

    items: tuple["Expr", ...]

    def __repr__(self) -> str:
        return "(" + ", ".join(map(repr, self.items)) + ")"


@dataclass(frozen=True)
class Literal:
    """Literal character data inside a constructor."""

    text: str

    def __repr__(self) -> str:
        return repr(self.text)


Expr = Union[PathExpr, FLWR, ElementConstructor, SequenceExpr, Literal]


def free_variables(expr: Expr, bound: frozenset[str] = frozenset()) -> set[str]:
    """Variables referenced by ``expr`` and not bound inside it."""
    if isinstance(expr, PathExpr):
        return set() if expr.is_absolute or expr.root in bound else {expr.root}
    if isinstance(expr, Literal):
        return set()
    if isinstance(expr, ElementConstructor):
        out: set[str] = set()
        for child in expr.children:
            out |= free_variables(child, bound)
        return out
    if isinstance(expr, SequenceExpr):
        out = set()
        for item in expr.items:
            out |= free_variables(item, bound)
        return out
    if isinstance(expr, FLWR):
        inner_bound = set(bound)
        out = set()
        for binding in expr.bindings:
            out |= free_variables(binding.path, frozenset(inner_bound))
            inner_bound.add(binding.var)
        for comparison in expr.where:
            out |= free_variables(comparison.left, frozenset(inner_bound))
            if isinstance(comparison.right, PathExpr):
                out |= free_variables(comparison.right, frozenset(inner_bound))
        out |= free_variables(expr.ret, frozenset(inner_bound))
        return out
    raise TypeError(f"not a Q expression: {expr!r}")
