"""XQuery subset Q: AST, parser, algebraic translation, pattern extraction."""

from .ast import (
    DOC_ROOT,
    Comparison,
    ElementConstructor,
    Expr,
    FLWR,
    ForBinding,
    Literal,
    PathExpr,
    SequenceExpr,
    Step,
    StepPredicate,
    free_variables,
)
from .parser import XQueryParseError, parse_query
from .translate import alg_path, alg_query, collections_context, full_path
from .extract import (
    Extraction,
    ExtractionUnit,
    PatternAccess,
    assemble_plan,
    attribute_path,
    bind_patterns,
    extract,
)

__all__ = [
    "DOC_ROOT",
    "Comparison",
    "ElementConstructor",
    "Expr",
    "FLWR",
    "ForBinding",
    "Literal",
    "PathExpr",
    "SequenceExpr",
    "Step",
    "StepPredicate",
    "free_variables",
    "XQueryParseError",
    "parse_query",
    "alg_path",
    "alg_query",
    "collections_context",
    "full_path",
    "Extraction",
    "ExtractionUnit",
    "PatternAccess",
    "assemble_plan",
    "attribute_path",
    "bind_patterns",
    "extract",
]
