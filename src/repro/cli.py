"""Command-line interface: a tiny interactive shell over the Database.

Usage::

    python -m repro.cli DOCUMENT.xml [--view name=XAM ...] [--query QUERY] [--stats]
    python -m repro.cli explain DOCUMENT.xml QUERY [--view name=XAM ...]
    python -m repro.cli serve DOCUMENT.xml [--view ...] [--queries FILE]
                        [--workers N] [--repeat K] [--timeout S] [--qlog PATH]
                        [--shards N] [--profile] [--sample-hz HZ]
    python -m repro.cli record DOCUMENT.xml QLOG [--view ...] [--queries FILE]
                        [--profile]
    python -m repro.cli replay DOCUMENT.xml QLOG [--view ...] [--json]
    python -m repro.cli optimize DOCUMENT.xml QLOG [--view ...]
                        [--audit-dir DIR] [--runs N] [--min-margin F]
    python -m repro.cli profile DOCUMENT.xml [--view ...] [--queries FILE]
                        [--repeat K] [--sample-hz HZ] [--flamegraph-out PATH]
                        [--json]
    python -m repro.cli calibrate QLOG [--json] [--ratio-limit F]

The ``explain`` form prints the full plan lifecycle of one query — the
logical plan, the chosen access paths with their rewritten plans, and the
compiled physical plan with estimated and actual per-operator
cardinalities and timings.  ``--stats`` appends the same per-operator
metrics after a ``--query`` run.

The ``serve`` form is the concurrent batch mode: it reads one query per
line (from ``--queries FILE`` or stdin), runs them through a
:class:`~repro.core.service.QueryService` worker pool with a shared plan
cache, prints the results in submission order, and ends with the cache
counters and latency percentiles.  ``--repeat K`` replays the whole batch
K times — the idiomatic way to watch the plan cache pay off.

The ``record`` form runs a workload with capture on: every execution's
plan fingerprint, result checksum and latency land in a JSONL query log.
The ``replay`` form re-runs such a capture against a freshly loaded
database and diffs fingerprints and checksums, exiting non-zero on any
divergence — the plan-regression gate CI runs on every push.  ``serve``,
``record`` and the log-capturing paths all flush and close the capture
on SIGINT/SIGTERM before exiting with code 130.

The ``profile`` form runs a workload with attributed resource profiling
on (per-operator CPU and peak traced memory at the executors' existing
observation points) plus an optional continuous stack sampler, then
prints the per-query top-CPU operators and the cost-model calibration
table.  ``--flamegraph-out`` writes the sampler's aggregate in
collapsed-stack text (flamegraph.pl / speedscope input).  The
``calibrate`` form fits per-operator-class cost coefficients from a
query log recorded with profiling on (``repro record --profile``) and
flags operator classes whose observed cost diverges more than the ratio
limit from the workload-wide trend — exit 1 when the log carries no
profiled operator rows.

The ``optimize`` form runs the offline plan tournament
(:mod:`repro.core.tournament`) over such a capture: every S-equivalent
rewriting of each distinct query is enumerated without the online
enumeration cap, checksum-validated against the recording under both
executors (exit 1 on any divergence — that is a rewriting bug, not a
tuning detail), benchmarked with trimmed-mean timed runs, and winners
are promoted as pinned plans (``pins.json`` in the audit directory;
``serve --pins`` installs them).

Without ``--query``, starts a REPL with commands:

    <xquery>                 run a query (Q subset, through the plan cache)
    .view <name> <xam>       materialize and register a view
    .drop <name>             drop a view
    .views                   list catalog entries
    .explain <xquery>        full EXPLAIN: plans + est/actual cardinalities
    .stats <xquery>          run a query and print per-operator metrics
    .trace <xquery|id>       run a query and print its span tree (or look
                             up a past trace by the id a result carried)
    .metrics                 the unified metrics registry (Prometheus text)
    .slow                    the slow-query log (span trees over threshold)
    .cache                   plan-cache counters (.cache clear to reset)
    .executor [iter|batch]   show or switch the executor mode
    .profile [on|off]        show or toggle attributed resource profiling
    .health                  access-module circuit-breaker states
    .summary                 summary statistics
    .quit

Exit codes of the one-shot modes: 0 success, 2 parse failure, 3 typed
execution fault (storage/plan/timeout), 4 admission rejection (the query
was shed before running; retry after the hinted delay), 1 anything else.  Only the typed
:class:`~repro.errors.ReproError` hierarchy is caught and rendered —
anything else is a genuine bug and surfaces with its full traceback
instead of being swallowed.  ``serve`` also accepts ``--chaos SPECS`` /
``--chaos-seed N`` to inject storage faults (see
:mod:`repro.engine.faults`), ``--metrics-port N`` to expose ``/metrics``
(Prometheus text + JSON) and ``/trace/<id>`` over HTTP while the batch
runs, and ``--slow-query-ms T`` to capture the span tree of every query
slower than T milliseconds; it reports circuit-breaker health and
degraded-result counts at the end of the batch.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
import threading
import weakref

from .core.coordinator import resolve_shards
from .core.httpapi import start_observability_server
from .core.replay import replay_records
from .core.service import QueryService, QueryTimeout
from .core.uload import EXECUTORS, Database, resolve_executor, resolve_profile
from .core.xam_parser import XAMParseError
from .engine.faults import FaultInjector
from .engine.qlog import QueryLog
from .errors import QueryRejected, ReproError
from .xquery.parser import XQueryParseError

__all__ = ["main", "run_command"]

#: process exit codes: parse failures and execution faults are
#: distinguishable by scripts wrapping the CLI
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_PARSE = 2
EXIT_FAULT = 3
#: admission control shed the query (it never ran — retrying after the
#: hinted delay is safe); distinct from EXIT_FAULT so wrappers can back
#: off instead of alerting
EXIT_REJECTED = 4
#: 128 + SIGINT, the shell convention for "killed by ^C" — what serve and
#: record return after a graceful (log-flushing) interrupt shutdown
EXIT_INTERRUPT = 130


@contextlib.contextmanager
def _graceful_signals():
    """Route SIGINT/SIGTERM into :class:`KeyboardInterrupt` for the scope
    of a serving loop, so ``finally`` blocks run: the query log flushes,
    the metrics server unbinds, the worker pool drains.  A no-op off the
    main thread (tests drive the CLI from workers; signal handlers can
    only be installed on the main thread) and handlers are restored on
    exit either way."""
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _interrupt(signum, frame):
        raise KeyboardInterrupt(signal.Signals(signum).name)

    previous = {
        signal.SIGINT: signal.signal(signal.SIGINT, _interrupt),
        signal.SIGTERM: signal.signal(signal.SIGTERM, _interrupt),
    }
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

_PARSE_ERRORS = (XQueryParseError, XAMParseError)


def _describe_error(error: BaseException) -> str:
    """One-line, typed description of a failure (REPL and serve modes)."""
    if isinstance(error, _PARSE_ERRORS):
        return f"parse error: {error}"
    if isinstance(error, QueryRejected):
        hint = (
            f"; retry after ~{error.retry_after:g}s"
            if error.retry_after
            else ""
        )
        return f"rejected [{error.reason}]: {error}{hint}"
    if isinstance(error, ReproError):
        return f"error [{type(error).__name__}]: {error}"
    return f"error: {type(error).__name__}: {error}"


def _exit_code_for(error: BaseException) -> int:
    if isinstance(error, _PARSE_ERRORS):
        return EXIT_PARSE
    if isinstance(error, QueryRejected):  # before the ReproError catch-all
        return EXIT_REJECTED
    if isinstance(error, ReproError):
        return EXIT_FAULT
    return EXIT_ERROR

#: one lazily created service per shell database (keeps run_command's
#: historical ``(db, line)`` signature while routing queries through the
#: plan cache)
_SERVICES: "weakref.WeakKeyDictionary[Database, QueryService]" = (
    weakref.WeakKeyDictionary()
)

#: per-database service constructor overrides (worker count, admission
#: knobs) recorded by the shell's argument parsing before the lazily
#: created service exists
_SERVICE_SETTINGS: "weakref.WeakKeyDictionary[Database, dict]" = (
    weakref.WeakKeyDictionary()
)


def _service_for(db: Database) -> QueryService:
    service = _SERVICES.get(db)
    if service is None:
        settings = dict(_SERVICE_SETTINGS.get(db) or {})
        settings.setdefault("cache_capacity", 64)
        settings.setdefault("max_workers", 2)
        service = QueryService(db, **settings)
        _SERVICES[db] = service
    return service


def _add_admission_arguments(parser: argparse.ArgumentParser) -> None:
    """The overload-protection knobs, shared by ``serve`` and the shell
    (env-var fallbacks: $REPRO_QUEUE_CAPACITY, $REPRO_ADAPTIVE_LIMIT,
    $REPRO_RETRY_BUDGET, $REPRO_RETRY_REFILL)."""
    parser.add_argument(
        "--queue-capacity", type=int, default=None, metavar="N",
        help="bound the admission queue at N waiting queries; beyond it "
        "queries are rejected immediately (typed QueryRejected with a "
        "retry-after hint) instead of timing out after consuming a slot; "
        "default honours $REPRO_QUEUE_CAPACITY, else max(64, 16*workers)",
    )
    parser.add_argument(
        "--no-adaptive-limit", action="store_true",
        help="disable the AIMD concurrency limiter (fixed worker pool); "
        "default honours $REPRO_ADAPTIVE_LIMIT, else enabled",
    )
    parser.add_argument(
        "--retry-budget", type=float, default=None, metavar="TOKENS",
        help="capacity of the service-wide retry token bucket (per-query "
        "retries spend from it; empty bucket converts retries into an "
        "immediate degraded fallback); default honours "
        "$REPRO_RETRY_BUDGET, else 256",
    )
    parser.add_argument(
        "--retry-budget-refill", type=float, default=None, metavar="PER_SEC",
        help="retry-budget refill rate in tokens/second; default honours "
        "$REPRO_RETRY_REFILL, else 64",
    )


def _admission_settings(args: argparse.Namespace) -> dict:
    """Service constructor kwargs from parsed admission arguments."""
    return {
        "queue_capacity": args.queue_capacity,
        "adaptive_limit": False if args.no_adaptive_limit else None,
        "retry_budget": args.retry_budget,
        "retry_budget_refill": args.retry_budget_refill,
    }


def _add_hedge_arguments(parser: argparse.ArgumentParser) -> None:
    """Hedged-scatter knobs (only meaningful with --shards > 1)."""
    parser.add_argument(
        "--hedge", action="store_true",
        help="with --shards: re-issue a straggler shard's subplan after "
        "the hedge delay and take the first result (identical answers, "
        "shorter tail); default honours $REPRO_HEDGE, else off",
    )
    parser.add_argument(
        "--hedge-delay", type=float, default=None, metavar="SECONDS",
        help="fixed hedge delay; default honours $REPRO_HEDGE_DELAY, "
        "else derived from the recent per-shard latency p95",
    )


def _print_result(result) -> None:
    for item in result.xml:
        print(item)
    for value in result.values:
        print(value)
    if not result.xml and not result.values:
        for t in result.tuples:
            print(t)
    if result.used_views:
        print(f"-- answered via views: {', '.join(result.used_views)}")
    else:
        print("-- answered from the base store")
    if getattr(result, "degraded", False):
        for event in result.degradation_events:
            print(f"-- degraded: {event}")


def _print_metrics(result) -> None:
    for index, metrics in enumerate(result.metrics):
        if len(result.metrics) > 1:
            print(f"-- unit {index + 1} operators:")
        else:
            print("-- operators:")
        for line in metrics.pretty().splitlines():
            print(f"  {line}")


def run_command(db: Database, line: str) -> bool:
    """Execute one REPL line; returns False when the session should end."""
    service = _service_for(db)
    line = line.strip()
    if not line:
        return True
    if line in (".quit", ".exit"):
        return False
    if line == ".cache":
        print(f"  {service.cache_stats().render()}")
        return True
    if line == ".health":
        for health_line in service.health().splitlines():
            print(f"  {health_line}")
        return True
    if line == ".cache clear":
        dropped = service.invalidate()
        print(f"  dropped {dropped} cached plan(s)")
        return True
    if line == ".executor" or line.startswith(".executor "):
        argument = line[len(".executor"):].strip()
        if not argument:
            print(f"  executor: {db.executor}")
            return True
        try:
            db.executor = resolve_executor(argument)
        except ValueError as error:
            print(f"  {error}")
            return True
        print(f"  executor: {db.executor}")
        return True
    if line == ".profile" or line.startswith(".profile "):
        argument = line[len(".profile"):].strip()
        if argument:
            try:
                db.profile = resolve_profile(argument)
            except ValueError as error:
                print(f"  {error}")
                return True
        print(f"  profile: {'on' if db.profile else 'off'}"
              + ("" if db.profile else
                 " (.profile on attributes per-operator CPU/memory)"))
        return True
    if line == ".views":
        for entry in db.catalog:
            marker = "index" if entry.is_index else entry.kind
            print(f"  [{marker}] {entry.name}: {entry.pattern.to_text()}")
        if not len(db.catalog):
            print("  (catalog empty)")
        return True
    if line == ".summary":
        print(f"  documents: {len(db.documents)}")
        print(f"  summary paths: {len(db.summary)}")
        print(f"  strong edges: {db.summary.count_strong_edges()}")
        print(f"  one-to-one edges: {db.summary.count_one_to_one_edges()}")
        return True
    if line == ".metrics":
        for metrics_line in service.metrics.render_prometheus().splitlines():
            print(f"  {metrics_line}")
        return True
    if line == ".slow":
        for slow_line in service.slow_queries.render().splitlines():
            print(f"  {slow_line}")
        return True
    if line.startswith(".trace "):
        argument = line[len(".trace "):].strip()
        trace = service.trace(argument)
        if trace is not None:  # an id from an earlier result: just look up
            for trace_line in trace.render().splitlines():
                print(f"  {trace_line}")
            return True
        try:
            result = service.query(argument)
            _print_result(result)
            trace = service.trace(result.trace_id) if result.trace_id else None
            if trace is None:
                print("  (tracing disabled on this database)")
            else:
                for trace_line in trace.render().splitlines():
                    print(f"  {trace_line}")
        except ReproError as error:
            print(f"  {_describe_error(error)}")
        return True
    if line.startswith(".view "):
        rest = line[len(".view "):].strip()
        name, _, xam = rest.partition(" ")
        if not name or not xam:
            print("usage: .view <name> <xam>")
            return True
        try:
            service.add_view(name, xam.strip())
            print(f"  view {name!r} materialized ({len(db.store[name])} tuples)")
        except ReproError as error:  # parse failure, duplicate, storage fault
            print(f"  {_describe_error(error)}")
        return True
    if line.startswith(".drop "):
        name = line[len(".drop "):].strip()
        try:
            service.drop_view(name)
            print(f"  dropped {name!r}")
        except KeyError:
            print(f"  no view named {name!r}")
        return True
    if line.startswith(".explain "):
        query = line[len(".explain "):]
        try:
            report = service.explain(query)
            for report_line in report.render().splitlines():
                print(f"  {report_line}")
        except ReproError as error:
            print(f"  {_describe_error(error)}")
        return True
    if line.startswith(".stats "):
        query = line[len(".stats "):]
        try:
            result = service.query(query, stats=True)
            _print_result(result)
            _print_metrics(result)
        except ReproError as error:
            print(f"  {_describe_error(error)}")
        return True
    try:
        _print_result(service.query(line))
    except ReproError as error:
        print(f"  {_describe_error(error)}")
    return True


def _load_database(
    document: str,
    view_specs: list[str],
    announce: bool = True,
    executor: str | None = None,
    profile: bool | None = None,
) -> Database:
    with open(document, encoding="utf-8") as handle:
        db = Database.from_xml(handle.read(), document)
    db.executor = resolve_executor(executor)
    db.profile = resolve_profile(profile)
    if announce:
        print(f"loaded {document}: {db.documents[0].count()} nodes, "
              f"{len(db.summary)} summary paths")
    for spec in view_specs:
        name, _, xam = spec.partition("=")
        db.add_view(name.strip(), xam.strip())
        if announce:
            print(f"view {name.strip()!r} installed")
    return db


def _add_shards_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="cluster mode: partition the documents across N store "
        "partitions behind a scatter-gather coordinator (answers stay "
        "bit-identical to the single store — same plan fingerprints, "
        "same result checksums); default honours $REPRO_SHARDS, else 1",
    )


def _shard_database(
    db: Database,
    shards: int | None,
    announce: bool = True,
    hedge: bool | None = None,
    hedge_delay: float | None = None,
) -> Database:
    """Re-house a loaded database behind a scatter-gather coordinator
    when a shard count > 1 is requested (``--shards`` / $REPRO_SHARDS).
    ``hedge``/``hedge_delay`` thread the hedged-scatter knobs through
    (None honours $REPRO_HEDGE / $REPRO_HEDGE_DELAY)."""
    count = resolve_shards(shards)
    if count <= 1:
        return db
    sharded = db.shard(count, hedge=hedge, hedge_delay=hedge_delay)
    if announce:
        print(f"-- shards: {count} ({sharded.partitioner!r}, "
              "scatter-gather coordinator"
              + (", hedged scatter" if sharded.hedge else "") + ")")
    return sharded


def _add_profile_arguments(parser: argparse.ArgumentParser) -> None:
    """Resource-profiling knobs shared by ``serve`` and ``profile``."""
    parser.add_argument(
        "--profile", action="store_true",
        help="attribute per-operator CPU and peak traced memory at the "
        "executors' observation points (flows into results, EXPLAIN, the "
        "query log and /profile); default honours $REPRO_PROFILE, else off",
    )
    parser.add_argument(
        "--sample-hz", type=float, default=None, metavar="HZ",
        help="run the continuous stack sampler at HZ samples/second and "
        "serve the aggregate at /flamegraph (collapsed-stack text)",
    )


def _add_executor_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default=None,
        help="execution engine: 'batch' runs compiled columnar-block "
        "closures, 'iter' the per-tuple operator iterators; default "
        "honours $REPRO_EXECUTOR, else batch",
    )


def _explain_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro explain",
        description="show the full plan lifecycle of one query",
    )
    parser.add_argument("document", help="XML document to load")
    parser.add_argument("query", help="query to explain")
    parser.add_argument(
        "--view",
        action="append",
        default=[],
        metavar="NAME=XAM",
        help="materialize a view before explaining (repeatable)",
    )
    _add_executor_argument(parser)
    args = parser.parse_args(argv)
    db = _load_database(
        args.document, args.view, announce=False, executor=args.executor
    )
    try:
        print(db.explain(args.query).render())
    except ReproError as error:
        print(_describe_error(error), file=sys.stderr)
        return _exit_code_for(error)
    return EXIT_OK


def _serve_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="concurrent batch mode: run many queries through a "
        "worker pool sharing one plan cache",
    )
    parser.add_argument("document", help="XML document to load")
    parser.add_argument(
        "--view",
        action="append",
        default=[],
        metavar="NAME=XAM",
        help="materialize a view before serving (repeatable)",
    )
    parser.add_argument(
        "--queries",
        metavar="FILE",
        help="file with one query per line ('#' comments allowed); "
        "default: read from stdin",
    )
    parser.add_argument("--workers", type=int, default=4, help="worker threads")
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="replay the whole batch K times (exercises the plan cache)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, help="per-query timeout (seconds)"
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=128, help="plan cache entries"
    )
    parser.add_argument(
        "--chaos",
        metavar="SPECS",
        help="inject storage faults while serving, e.g. "
        "'relation.scan@v_person:transient:0.2' "
        "(see repro.engine.faults for the grammar)",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed of the fault injector's RNG (default 0)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="expose /metrics, /metrics.json, /health, /traces, "
        "/trace/<id> and /slow over HTTP while serving (0 = ephemeral)",
    )
    parser.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="T",
        help="capture the full span tree of queries slower than T ms",
    )
    parser.add_argument(
        "--no-trace",
        action="store_true",
        help="disable span tracing (for overhead comparisons)",
    )
    parser.add_argument(
        "--qlog",
        metavar="PATH",
        default=None,
        help="capture every executed query to a JSONL workload log "
        "(replayable with 'repro replay'); default honours $REPRO_QLOG",
    )
    parser.add_argument(
        "--pins",
        metavar="PATH",
        default=None,
        help="install tournament-promoted pinned plans from a pins.json "
        "written by 'repro optimize' before serving",
    )
    _add_executor_argument(parser)
    _add_profile_arguments(parser)
    _add_shards_argument(parser)
    _add_admission_arguments(parser)
    _add_hedge_arguments(parser)
    args = parser.parse_args(argv)

    queries = _read_queries(args.queries)
    if not queries:
        print("no queries to run", file=sys.stderr)
        return 1

    db = _load_database(
        args.document, args.view, announce=False, executor=args.executor,
        profile=True if args.profile else None,
    )
    if args.no_trace:
        db.tracer = None
    if args.chaos:
        db.fault_injector = FaultInjector(args.chaos, seed=args.chaos_seed)
        print(f"-- chaos: {db.fault_injector.render()} (seed {args.chaos_seed})")
    db = _shard_database(
        db, args.shards,
        hedge=True if args.hedge else None,
        hedge_delay=args.hedge_delay,
    )
    slow_threshold = (
        args.slow_query_ms / 1000.0 if args.slow_query_ms is not None else None
    )
    qlog = QueryLog(args.qlog) if args.qlog else None
    interrupted = False
    failed = 0
    with QueryService(
        db,
        cache_capacity=args.cache_capacity,
        max_workers=args.workers,
        default_timeout=args.timeout,
        slow_query_threshold=slow_threshold,
        qlog=qlog,  # None → the service honours $REPRO_QLOG itself
        sample_hz=args.sample_hz,
        **_admission_settings(args),
    ) as service:
        observer = None
        if args.metrics_port is not None:
            observer = start_observability_server(service, port=args.metrics_port)
            print(f"-- metrics: {observer.url}/metrics")
        if service.profiler is not None:
            modes = []
            if db.profile:
                modes.append("attributed")
            if args.sample_hz:
                modes.append(f"sampling @ {args.sample_hz:g} Hz")
            print(f"-- profiler: {', '.join(modes) or 'ring only'}"
                  + (f" ({observer.url}/profile)" if observer else ""))
        if qlog is not None:
            print(f"-- query log: {qlog.path}")
        if args.pins:
            installed = service.load_pins(args.pins)
            print(f"-- pinned plans: {installed} installed from {args.pins}")
        try:
            with _graceful_signals():
                session = service.session("serve")
                degraded = 0
                for round_number in range(args.repeat):
                    for query, outcome in zip(
                        queries, _run_batch_settled(service, session, queries)
                    ):
                        print(f"== {query}")
                        if isinstance(outcome, Exception):
                            failed += 1
                            print(f"  {_describe_error(outcome)}")
                        else:
                            degraded += 1 if outcome.degraded else 0
                            _print_result(outcome)
                print(f"-- plan cache: {service.cache_stats().render()}")
                print(f"-- latency: {session.latency.render()}")
                if service.admission.shed:
                    print(f"-- admission: {service.admission.render()}")
                if degraded:
                    print(f"-- degraded results: {degraded}")
                if args.chaos or degraded:
                    for health_line in service.health().splitlines():
                        print(f"-- health: {health_line}")
                if service.slow_queries.captured:
                    for slow_line in service.slow_queries.render().splitlines():
                        print(f"-- slow: {slow_line}")
                if service.sentinel.plan_flips or service.sentinel.misestimates:
                    for sentinel_line in service.sentinel.render().splitlines():
                        print(f"-- sentinel: {sentinel_line}")
        except KeyboardInterrupt:
            # graceful interrupt: fall through to the cleanup below, so
            # the capture's tail reaches disk and the port unbinds.
            # cancel_all stops running queries at their next unit
            # boundary — a saturated queue must not delay the exit
            interrupted = True
            service.cancel_all()
            print("-- interrupted; flushing query log", file=sys.stderr)
        finally:
            if observer is not None:
                observer.stop()
            if qlog is not None:
                qlog.close()
                print(f"-- query log: {qlog.written} record(s) -> {qlog.path}")
            closer = getattr(db, "close", None)
            if closer is not None:  # coordinator: stop the scatter pool
                closer()
    if interrupted:
        return EXIT_INTERRUPT
    return EXIT_ERROR if failed else EXIT_OK


def _read_queries(path: str | None) -> list[str]:
    """One query per line from a file (or stdin), '#' comments skipped."""
    if path:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = sys.stdin.readlines()
    return [
        line.strip() for line in lines
        if line.strip() and not line.lstrip().startswith("#")
    ]


def _record_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro record",
        description="run a workload with capture on: every query's plan "
        "fingerprint, result checksum and latency land in a JSONL log "
        "that 'repro replay' can re-run and diff",
    )
    parser.add_argument("document", help="XML document to load")
    parser.add_argument("qlog", metavar="QLOG", help="JSONL capture to write")
    parser.add_argument(
        "--view", action="append", default=[], metavar="NAME=XAM",
        help="materialize a view before recording (repeatable)",
    )
    parser.add_argument(
        "--queries", metavar="FILE",
        help="file with one query per line; default: read from stdin",
    )
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="run the workload K times (stresses fingerprint stability)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="execute with per-operator metrics (recorded per query)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="execute with attributed resource profiling: the captured "
        "operator rows carry cpu_ms/peak_mem_kb, making the log a "
        "'repro calibrate' input; default honours $REPRO_PROFILE",
    )
    _add_executor_argument(parser)
    args = parser.parse_args(argv)

    queries = _read_queries(args.queries)
    if not queries:
        print("no queries to record", file=sys.stderr)
        return EXIT_ERROR
    db = _load_database(
        args.document, args.view, announce=False, executor=args.executor,
        profile=True if args.profile else None,
    )
    qlog = QueryLog(args.qlog)
    failed = 0
    interrupted = False
    with QueryService(db, qlog=qlog) as service:
        try:
            with _graceful_signals():
                for _ in range(args.repeat):
                    for query in queries:
                        try:
                            # capture runs are background-class work:
                            # under degradation they are shed before any
                            # interactive query is
                            service.query(
                                query, stats=args.stats, priority="background"
                            )
                        except ReproError as error:
                            failed += 1
                            print(
                                f"-- {query}: {_describe_error(error)}",
                                file=sys.stderr,
                            )
        except KeyboardInterrupt:
            interrupted = True
            print("-- interrupted; flushing query log", file=sys.stderr)
        finally:
            qlog.close()
    print(f"recorded {qlog.written} record(s) -> {args.qlog}"
          + (f" ({failed} failed)" if failed else ""))
    if interrupted:
        return EXIT_INTERRUPT
    return EXIT_ERROR if failed else EXIT_OK


def _replay_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro replay",
        description="re-run a captured workload and diff plan fingerprints "
        "and result checksums against the recording; exits non-zero on "
        "any divergence",
    )
    parser.add_argument("document", help="XML document to load")
    parser.add_argument(
        "qlog", metavar="QLOG", help="JSONL capture written by 'repro record'"
    )
    parser.add_argument(
        "--view", action="append", default=[], metavar="NAME=XAM",
        help="materialize a view before replaying (repeatable; must match "
        "the recording environment for a clean diff)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    _add_executor_argument(parser)
    _add_shards_argument(parser)
    _add_hedge_arguments(parser)
    args = parser.parse_args(argv)

    records = QueryLog.read_all(args.qlog)
    db = _load_database(
        args.document, args.view, announce=False, executor=args.executor
    )
    db = _shard_database(
        db, args.shards, announce=not args.json,
        hedge=True if args.hedge else None,
        hedge_delay=args.hedge_delay,
    )
    report = replay_records(db, records)
    if args.json:
        import json as _json

        print(_json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    return EXIT_OK if report.ok else EXIT_ERROR


def _optimize_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro optimize",
        description="plan tournament over a recorded workload: enumerate "
        "every S-equivalent rewriting of each distinct query, validate "
        "each candidate's result checksum against the recording under "
        "both executors (any divergence is a rewriting bug and fails the "
        "run), benchmark the survivors, and promote winners as pinned "
        "plans with a full per-query audit trail",
    )
    parser.add_argument("document", help="XML document to load")
    parser.add_argument(
        "qlog", metavar="QLOG", help="JSONL capture written by 'repro record'"
    )
    parser.add_argument(
        "--view", action="append", default=[], metavar="NAME=XAM",
        help="materialize a view before optimizing (repeatable; must match "
        "the recording environment for clean validation)",
    )
    parser.add_argument(
        "--audit-dir", metavar="DIR", default=None,
        help="write the per-query audit trail (candidates, verdicts, "
        "timings, winner, pins.json) under this directory",
    )
    parser.add_argument(
        "--runs", type=int, default=5,
        help="timed benchmark laps per validated candidate (default 5; "
        "the score is the trimmed mean)",
    )
    parser.add_argument(
        "--min-margin", type=float, default=0.05,
        help="fractional latency improvement over the cost model's pick "
        "required to promote a pin (default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--max-candidates", type=int, default=32,
        help="cap on whole-query candidate combinations (default 32; "
        "the default pick is always included)",
    )
    parser.add_argument(
        "--no-pin", action="store_true",
        help="validation-only mode: run the tournament but promote nothing",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    _add_executor_argument(parser)
    args = parser.parse_args(argv)

    from .core.replay import load_records
    from .core.tournament import run_tournament

    records = load_records(args.qlog)
    db = _load_database(
        args.document, args.view, announce=False, executor=args.executor
    )
    report = run_tournament(
        db,
        records,
        runs=args.runs,
        min_margin=args.min_margin,
        max_candidates=args.max_candidates,
        audit_dir=args.audit_dir,
        pin=not args.no_pin,
    )
    if args.json:
        import json as _json

        print(_json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
        if args.audit_dir:
            print(f"-- audit trail: {args.audit_dir}")
        if report.promotions and not args.no_pin and args.audit_dir:
            print(f"-- pins: {args.audit_dir}/pins.json "
                  f"(serve with --pins to apply)")
    return EXIT_OK if report.ok else EXIT_ERROR


def _profile_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="run a workload with attributed resource profiling "
        "(per-operator CPU + peak traced memory) and an optional "
        "continuous stack sampler; prints the per-query top-CPU "
        "operators and the cost-model calibration table",
    )
    parser.add_argument("document", help="XML document to load")
    parser.add_argument(
        "--view", action="append", default=[], metavar="NAME=XAM",
        help="materialize a view before profiling (repeatable)",
    )
    parser.add_argument(
        "--queries", metavar="FILE",
        help="file with one query per line; default: read from stdin",
    )
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="run the workload K times (more samples per operator)",
    )
    parser.add_argument(
        "--sample-hz", type=float, default=None, metavar="HZ",
        help="also run the continuous stack sampler at HZ samples/second",
    )
    parser.add_argument(
        "--flamegraph-out", metavar="PATH", default=None,
        help="write the sampler's aggregate as collapsed-stack text "
        "(requires --sample-hz; flamegraph.pl / speedscope input)",
    )
    parser.add_argument(
        "--top", type=int, default=3,
        help="top-CPU operators shown per query (default 3)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    _add_executor_argument(parser)
    args = parser.parse_args(argv)
    if args.flamegraph_out and not args.sample_hz:
        parser.error("--flamegraph-out requires --sample-hz")

    from .engine.calibrate import calibrate_records
    from .engine.qlog import build_record

    queries = _read_queries(args.queries)
    if not queries:
        print("no queries to profile", file=sys.stderr)
        return EXIT_ERROR
    db = _load_database(
        args.document, args.view, announce=False, executor=args.executor,
        profile=True,
    )
    # an explicit deep-dive: take the tracemalloc hit on every query so
    # the memory column is never a stale sample
    db.profile_memory_stride = 1
    failed = 0
    records: list[dict] = []
    with QueryService(db, sample_hz=args.sample_hz) as service:
        for _ in range(args.repeat):
            for query in queries:
                try:
                    result = service.query(query)
                except ReproError as error:
                    failed += 1
                    print(f"-- {query}: {_describe_error(error)}",
                          file=sys.stderr)
                    continue
                records.append(build_record(query, result, 0.0, "ok"))
        profiles = service.profiler.profiles()
        sampler = service.profiler.sampler
        if args.flamegraph_out and sampler is not None:
            with open(args.flamegraph_out, "w", encoding="utf-8") as handle:
                handle.write(sampler.collapsed() + "\n")
    calibration = calibrate_records(records)
    if args.json:
        import json as _json

        print(_json.dumps(
            {
                "profiles": [p.as_dict() for p in profiles],
                "calibration": calibration.as_dict(),
            },
            indent=2,
        ))
    else:
        for profile in profiles:
            print(f"== {profile.query}")
            print(f"  executor={profile.executor} "
                  f"wall={profile.seconds * 1000:.2f}ms "
                  f"cpu={profile.cpu_ms:.2f}ms")
            for op in profile.top_cpu(args.top):
                print(f"  cpu {op['self_cpu_ms']:>9.3f}ms  {op['label']} "
                      f"(rows={op['actual']}, mem={op['peak_mem_kb']}KB)")
        print("--")
        print(calibration.render())
        if args.flamegraph_out:
            print(f"-- flamegraph: {args.flamegraph_out}")
    return EXIT_ERROR if failed else EXIT_OK


def _calibrate_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro calibrate",
        description="fit per-operator-class cost coefficients from a "
        "query log recorded with attributed profiling on "
        "('repro record --profile'); flags classes whose observed "
        "cpu-per-cost-unit diverges from the workload-wide trend",
    )
    parser.add_argument(
        "qlog", metavar="QLOG",
        help="JSONL capture written by 'repro record --profile'",
    )
    parser.add_argument(
        "--ratio-limit", type=float, default=3.0, metavar="F",
        help="flag classes whose coefficient is more than F× away from "
        "the workload-wide one (default 3.0)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)

    from .core.replay import load_records
    from .engine.calibrate import calibrate_records

    records = load_records(args.qlog)
    report = calibrate_records(records, ratio_limit=args.ratio_limit)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return EXIT_ERROR if report.empty else EXIT_OK


def _run_batch_settled(service: QueryService, session, queries: list[str]) -> list:
    """Submit a whole batch, then settle every future: results in
    submission order, exceptions captured per query instead of aborting
    the batch."""
    futures: list = []
    for q in queries:
        try:
            futures.append(
                service.submit(
                    q, session=session, timeout=service.default_timeout
                )
            )
        except QueryRejected as rejection:
            # admission shed it synchronously: a settled outcome for this
            # query, not a reason to abort the rest of the batch
            futures.append(rejection)
    outcomes: list = []
    for query, future in zip(queries, futures):
        if isinstance(future, QueryRejected):
            outcomes.append(future)
            continue
        try:
            outcomes.append(future.result(service.default_timeout))
        except TimeoutError:
            future.cancel()
            if hasattr(future, "cancel_query"):
                future.cancel_query()
            outcomes.append(QueryTimeout(f"timed out: {query!r}"))
        except ReproError as error:  # typed parse/storage/plan failure
            outcomes.append(error)
        # anything untyped is a bug in the engine, not a settled outcome:
        # let it propagate so it fails loudly instead of being masked
    return outcomes


def main(argv: list[str] | None = None) -> int:
    """Entry point of the shell (``python -m repro.cli doc.xml``), the
    ``explain`` one-shot (``python -m repro.cli explain doc.xml Q``), and
    the ``serve`` batch mode (``python -m repro.cli serve doc.xml …``)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explain":
        return _explain_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "record":
        return _record_main(argv[1:])
    if argv and argv[0] == "replay":
        return _replay_main(argv[1:])
    if argv and argv[0] == "optimize":
        return _optimize_main(argv[1:])
    if argv and argv[0] == "profile":
        return _profile_main(argv[1:])
    if argv and argv[0] == "calibrate":
        return _calibrate_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro", description="XAM-based XML database shell"
    )
    parser.add_argument("document", help="XML document to load")
    parser.add_argument(
        "--view",
        action="append",
        default=[],
        metavar="NAME=XAM",
        help="materialize a view before querying (repeatable)",
    )
    parser.add_argument("--query", help="run one query and exit")
    parser.add_argument(
        "--stats",
        action="store_true",
        help="with --query: print per-operator metrics after the result",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker threads of the shell's query service (default 2)",
    )
    _add_executor_argument(parser)
    _add_admission_arguments(parser)
    args = parser.parse_args(argv)

    db = _load_database(args.document, args.view, executor=args.executor)
    # the shell's QueryService is created lazily by run_command; record
    # its constructor knobs now so the first query picks them up
    _SERVICE_SETTINGS[db] = {
        "max_workers": args.workers,
        **_admission_settings(args),
    }

    if args.query:
        try:
            result = db.query(args.query, stats=args.stats)
        except ReproError as error:
            print(_describe_error(error), file=sys.stderr)
            return _exit_code_for(error)
        _print_result(result)
        if args.stats:
            _print_metrics(result)
        return EXIT_OK

    print("repro shell — .quit to exit, .views/.view/.drop/.explain/.stats/"
          ".trace/.metrics/.slow/.cache/.executor/.profile/.health/.summary")
    while True:
        try:
            line = input("xam> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not run_command(db, line):
            return 0


if __name__ == "__main__":  # pragma: no cover - direct execution
    sys.exit(main())
