"""Command-line interface: a tiny interactive shell over the Database.

Usage::

    python -m repro.cli DOCUMENT.xml [--view name=XAM ...] [--query QUERY] [--stats]
    python -m repro.cli explain DOCUMENT.xml QUERY [--view name=XAM ...]

The ``explain`` form prints the full plan lifecycle of one query — the
logical plan, the chosen access paths with their rewritten plans, and the
compiled physical plan with estimated and actual per-operator
cardinalities and timings.  ``--stats`` appends the same per-operator
metrics after a ``--query`` run.

Without ``--query``, starts a REPL with commands:

    <xquery>                 run a query (Q subset)
    .view <name> <xam>       materialize and register a view
    .drop <name>             drop a view
    .views                   list catalog entries
    .explain <xquery>        full EXPLAIN: plans + est/actual cardinalities
    .stats <xquery>          run a query and print per-operator metrics
    .summary                 summary statistics
    .quit
"""

from __future__ import annotations

import argparse
import sys

from .core.uload import Database

__all__ = ["main", "run_command"]


def _print_result(result) -> None:
    for item in result.xml:
        print(item)
    for value in result.values:
        print(value)
    if not result.xml and not result.values:
        for t in result.tuples:
            print(t)
    if result.used_views:
        print(f"-- answered via views: {', '.join(result.used_views)}")
    else:
        print("-- answered from the base store")


def _print_metrics(result) -> None:
    for index, metrics in enumerate(result.metrics):
        if len(result.metrics) > 1:
            print(f"-- unit {index + 1} operators:")
        else:
            print("-- operators:")
        for line in metrics.pretty().splitlines():
            print(f"  {line}")


def run_command(db: Database, line: str) -> bool:
    """Execute one REPL line; returns False when the session should end."""
    line = line.strip()
    if not line:
        return True
    if line in (".quit", ".exit"):
        return False
    if line == ".views":
        for entry in db.catalog:
            marker = "index" if entry.is_index else entry.kind
            print(f"  [{marker}] {entry.name}: {entry.pattern.to_text()}")
        if not len(db.catalog):
            print("  (catalog empty)")
        return True
    if line == ".summary":
        print(f"  documents: {len(db.documents)}")
        print(f"  summary paths: {len(db.summary)}")
        print(f"  strong edges: {db.summary.count_strong_edges()}")
        print(f"  one-to-one edges: {db.summary.count_one_to_one_edges()}")
        return True
    if line.startswith(".view "):
        rest = line[len(".view "):].strip()
        name, _, xam = rest.partition(" ")
        if not name or not xam:
            print("usage: .view <name> <xam>")
            return True
        try:
            db.add_view(name, xam.strip())
            print(f"  view {name!r} materialized ({len(db.store[name])} tuples)")
        except Exception as error:  # surface parse/eval problems to the user
            print(f"  error: {error}")
        return True
    if line.startswith(".drop "):
        name = line[len(".drop "):].strip()
        try:
            db.drop_view(name)
            print(f"  dropped {name!r}")
        except KeyError:
            print(f"  no view named {name!r}")
        return True
    if line.startswith(".explain "):
        query = line[len(".explain "):]
        try:
            report = db.explain(query)
            for report_line in report.render().splitlines():
                print(f"  {report_line}")
        except Exception as error:
            print(f"  error: {error}")
        return True
    if line.startswith(".stats "):
        query = line[len(".stats "):]
        try:
            result = db.query(query, stats=True)
            _print_result(result)
            _print_metrics(result)
        except Exception as error:
            print(f"  error: {error}")
        return True
    try:
        _print_result(db.query(line))
    except Exception as error:
        print(f"  error: {error}")
    return True


def _load_database(document: str, view_specs: list[str], announce: bool = True) -> Database:
    with open(document, encoding="utf-8") as handle:
        db = Database.from_xml(handle.read(), document)
    if announce:
        print(f"loaded {document}: {db.documents[0].count()} nodes, "
              f"{len(db.summary)} summary paths")
    for spec in view_specs:
        name, _, xam = spec.partition("=")
        db.add_view(name.strip(), xam.strip())
        if announce:
            print(f"view {name.strip()!r} installed")
    return db


def _explain_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro explain",
        description="show the full plan lifecycle of one query",
    )
    parser.add_argument("document", help="XML document to load")
    parser.add_argument("query", help="query to explain")
    parser.add_argument(
        "--view",
        action="append",
        default=[],
        metavar="NAME=XAM",
        help="materialize a view before explaining (repeatable)",
    )
    args = parser.parse_args(argv)
    db = _load_database(args.document, args.view, announce=False)
    print(db.explain(args.query).render())
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of the shell (``python -m repro.cli doc.xml``) and of
    the ``explain`` one-shot (``python -m repro.cli explain doc.xml Q``)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explain":
        return _explain_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro", description="XAM-based XML database shell"
    )
    parser.add_argument("document", help="XML document to load")
    parser.add_argument(
        "--view",
        action="append",
        default=[],
        metavar="NAME=XAM",
        help="materialize a view before querying (repeatable)",
    )
    parser.add_argument("--query", help="run one query and exit")
    parser.add_argument(
        "--stats",
        action="store_true",
        help="with --query: print per-operator metrics after the result",
    )
    args = parser.parse_args(argv)

    db = _load_database(args.document, args.view)

    if args.query:
        result = db.query(args.query, stats=args.stats)
        _print_result(result)
        if args.stats:
            _print_metrics(result)
        return 0

    print("repro shell — .quit to exit, "
          ".views/.view/.drop/.explain/.stats/.summary")
    while True:
        try:
            line = input("xam> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not run_command(db, line):
            return 0


if __name__ == "__main__":  # pragma: no cover - direct execution
    sys.exit(main())
