"""Command-line interface: a tiny interactive shell over the Database.

Usage::

    python -m repro.cli DOCUMENT.xml [--view name=XAM ...] [--query QUERY]

Without ``--query``, starts a REPL with commands:

    <xquery>                 run a query (Q subset)
    .view <name> <xam>       materialize and register a view
    .drop <name>             drop a view
    .views                   list catalog entries
    .explain <xquery>        show access-path selection
    .summary                 summary statistics
    .quit
"""

from __future__ import annotations

import argparse
import sys

from .core.uload import Database

__all__ = ["main", "run_command"]


def _print_result(result) -> None:
    for item in result.xml:
        print(item)
    for value in result.values:
        print(value)
    if not result.xml and not result.values:
        for t in result.tuples:
            print(t)
    if result.used_views:
        print(f"-- answered via views: {', '.join(result.used_views)}")
    else:
        print("-- answered from the base store")


def run_command(db: Database, line: str) -> bool:
    """Execute one REPL line; returns False when the session should end."""
    line = line.strip()
    if not line:
        return True
    if line in (".quit", ".exit"):
        return False
    if line == ".views":
        for entry in db.catalog:
            marker = "index" if entry.is_index else entry.kind
            print(f"  [{marker}] {entry.name}: {entry.pattern.to_text()}")
        if not len(db.catalog):
            print("  (catalog empty)")
        return True
    if line == ".summary":
        print(f"  documents: {len(db.documents)}")
        print(f"  summary paths: {len(db.summary)}")
        print(f"  strong edges: {db.summary.count_strong_edges()}")
        print(f"  one-to-one edges: {db.summary.count_one_to_one_edges()}")
        return True
    if line.startswith(".view "):
        rest = line[len(".view "):].strip()
        name, _, xam = rest.partition(" ")
        if not name or not xam:
            print("usage: .view <name> <xam>")
            return True
        try:
            db.add_view(name, xam.strip())
            print(f"  view {name!r} materialized ({len(db.store[name])} tuples)")
        except Exception as error:  # surface parse/eval problems to the user
            print(f"  error: {error}")
        return True
    if line.startswith(".drop "):
        name = line[len(".drop "):].strip()
        try:
            db.drop_view(name)
            print(f"  dropped {name!r}")
        except KeyError:
            print(f"  no view named {name!r}")
        return True
    if line.startswith(".explain "):
        query = line[len(".explain "):]
        try:
            for resolution in db.explain(query):
                print(f"  {resolution.pattern.to_text()}")
                print(f"    → {resolution}")
        except Exception as error:
            print(f"  error: {error}")
        return True
    try:
        _print_result(db.query(line))
    except Exception as error:
        print(f"  error: {error}")
    return True


def main(argv: list[str] | None = None) -> int:
    """Entry point of the interactive shell (``python -m repro.cli doc.xml``)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="XAM-based XML database shell"
    )
    parser.add_argument("document", help="XML document to load")
    parser.add_argument(
        "--view",
        action="append",
        default=[],
        metavar="NAME=XAM",
        help="materialize a view before querying (repeatable)",
    )
    parser.add_argument("--query", help="run one query and exit")
    args = parser.parse_args(argv)

    with open(args.document, encoding="utf-8") as handle:
        db = Database.from_xml(handle.read(), args.document)
    print(f"loaded {args.document}: {db.documents[0].count()} nodes, "
          f"{len(db.summary)} summary paths")
    for spec in args.view:
        name, _, xam = spec.partition("=")
        db.add_view(name.strip(), xam.strip())
        print(f"view {name.strip()!r} installed")

    if args.query:
        _print_result(db.query(args.query))
        return 0

    print("repro shell — .quit to exit, .views/.view/.drop/.explain/.summary")
    while True:
        try:
            line = input("xam> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not run_command(db, line):
            return 0


if __name__ == "__main__":  # pragma: no cover - direct execution
    sys.exit(main())
